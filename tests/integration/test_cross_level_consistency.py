"""Integration: multi-level estimation consistency (Fig. 1's promise).

The selling point of simulating at multiple abstraction levels is that the
quick estimate and the detailed model must tell a *consistent* story: the
coarse level brackets the refined ones, speedup ratios behave sanely, and
the same workload never changes its functional result between levels.
"""

import numpy as np
import pytest

from repro.dialects.linalg import ConvDims
from repro.generators.pipeline import LoweringPipeline
from repro.generators.systolic import SystolicConfig


WORKLOADS = [
    ConvDims(n=2, c=2, h=5, w=5, fh=2, fw=2),
    ConvDims(n=4, c=1, h=7, w=7, fh=3, fw=3),
    ConvDims(n=1, c=3, h=6, w=4, fh=2, fw=2),
]


@pytest.mark.parametrize("dims", WORKLOADS)
def test_coarse_level_is_conservative(dims):
    """The Linalg estimate upper-bounds every finer level: a designer who
    budgets against the quick model is never surprised upward."""
    pipeline = LoweringPipeline(dims=dims, dataflow="WS")
    results = pipeline.run_all()
    coarse = results["linalg"].cycles
    for stage in ("affine", "reassign", "systolic"):
        assert results[stage].cycles <= coarse, stage


@pytest.mark.parametrize("dims", WORKLOADS)
def test_systolic_speedup_bounded_by_pe_count(dims):
    """The PE array cannot beat the single-core refined model by more than
    its compute parallelism times the per-MAC cost ratio (sanity bound on
    the speedup story a DSE would report)."""
    pipeline = LoweringPipeline(dims=dims, dataflow="WS", array_height=4,
                                array_width=4)
    refined = pipeline.run_stage("reassign").cycles
    systolic = pipeline.run_stage("systolic").cycles
    speedup = refined / systolic
    pes = 16
    # reassign spends ~2 cycles/MAC (mul+add), systolic 1 (fused MAC):
    # ceiling = 2x per-PE advantage x 16 PEs, plus fill slack.
    assert 1.0 < speedup <= 2.5 * pes


def test_dataflow_choice_does_not_change_functionality():
    """All three final-stage dataflows compute the conv of the shared
    earlier stages."""
    dims = ConvDims(n=3, c=2, h=6, w=6, fh=2, fw=2)
    reference = None
    for dataflow in ("WS", "IS", "OS"):
        pipeline = LoweringPipeline(dims=dims, dataflow=dataflow)
        result = pipeline.run_stage("systolic")
        if reference is None:
            reference = result.ofmap
        else:
            assert np.array_equal(result.ofmap, reference)


def test_analytical_model_brackets_between_levels():
    """The systolic closed form sits below the refined single-core model
    for any workload where the array is meaningfully parallel."""
    for dims in WORKLOADS:
        cfg = SystolicConfig("WS", 4, 4, dims)
        single_core_estimate = dims.macs * 2  # mul+add on one PE
        if dims.macs > 200:
            assert cfg.expected_cycles < single_core_estimate
