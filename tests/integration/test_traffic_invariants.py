"""Property tests on cross-cutting invariants of the simulation engine.

These check conservation laws that must hold for *any* configuration:
traffic accounting matches the analytical model, total busy time never
exceeds capacity, and the closed forms agree between the generator and
the SCALE-Sim baseline everywhere.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ScaleSimConfig, run_scalesim
from repro.dialects.linalg import ConvDims
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.sim import simulate

configs = st.builds(
    lambda dataflow, ah, n, c, size, filt: SystolicConfig(
        dataflow,
        ah,
        4,
        ConvDims(n=n, c=c, h=size, w=size, fh=filt, fw=filt),
    ),
    dataflow=st.sampled_from(["WS", "IS", "OS"]),
    ah=st.sampled_from([2, 4]),
    n=st.integers(1, 4),
    c=st.integers(1, 3),
    size=st.integers(4, 7),
    filt=st.integers(1, 3),
)


@settings(max_examples=15, deadline=None)
@given(cfg=configs, seed=st.integers(0, 2**16))
def test_ofmap_traffic_matches_model(cfg, seed):
    """DES ofmap write bytes equal the analytical traffic model exactly,
    for any dataflow/shape combination."""
    rng = np.random.default_rng(seed)
    program = build_systolic_program(cfg)
    dims = cfg.dims
    inputs = program.prepare_inputs(
        rng.integers(-2, 3, (dims.c, dims.h, dims.w)).astype(np.int32),
        rng.integers(-2, 3, (dims.n, dims.c, dims.fh, dims.fw)).astype(np.int32),
    )
    result = simulate(program.module, inputs=inputs)
    report = result.summary.memory_named("ofmap_mem")
    assert report.bytes_written == cfg.ofmap_write_bytes


@settings(max_examples=25, deadline=None)
@given(cfg=configs)
def test_scalesim_agrees_everywhere(cfg):
    """Closed-form cycle agreement between the EQueue model and the
    SCALE-Sim baseline holds across the whole configuration space (the
    Fig. 9 claim, generalized beyond the plotted points)."""
    baseline = run_scalesim(
        ScaleSimConfig(cfg.dataflow, cfg.array_height, cfg.array_width, cfg.dims)
    )
    assert baseline.cycles == cfg.expected_cycles
    assert baseline.folds == cfg.loop_iterations


@settings(max_examples=10, deadline=None)
@given(cfg=configs, seed=st.integers(0, 2**16))
def test_busy_time_bounded_by_makespan(cfg, seed):
    """No component can be busy longer than the simulation ran times its
    parallel capacity (conservation of service time)."""
    rng = np.random.default_rng(seed)
    program = build_systolic_program(cfg)
    dims = cfg.dims
    inputs = program.prepare_inputs(
        rng.integers(-2, 3, (dims.c, dims.h, dims.w)).astype(np.int32),
        rng.integers(-2, 3, (dims.n, dims.c, dims.fh, dims.fw)).astype(np.int32),
    )
    from repro.sim.engine import Engine

    engine = Engine(program.module, inputs=inputs)
    result = engine.run()
    for memory in engine.memories:
        if memory.queue is None:
            continue
        capacity = result.cycles * memory.ports
        assert memory.queue.busy_cycles <= max(capacity, 0) or (
            result.cycles == 0 and memory.queue.busy_cycles == 0
        )
    for proc in engine.processors:
        assert proc.busy_cycles <= result.cycles
