"""Integration: §VII — the four AI Engine FIR cases vs paper numbers.

We reproduce the paper's EQueue results exactly for cases 1-3 and within
0.5% for case 4 (the paper's own result differs from Xilinx's simulator by
a similar margin there).
"""

import numpy as np
import pytest

from repro.baselines import AIE_REFERENCE, compare_with_aie
from repro.generators.fir import PAPER_CASES, build_fir_program, fir_reference
from repro.sim import simulate


@pytest.fixture(scope="module")
def measured():
    results = {}
    rng = np.random.default_rng(99)
    for case, cfg in PAPER_CASES.items():
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
        program = build_fir_program(cfg)
        result = simulate(
            program.module, inputs=program.prepare_inputs(samples, coeffs)
        )
        output = program.extract_output(result)
        assert np.array_equal(
            output, fir_reference(samples, coeffs, cfg.samples)
        ), f"{case}: FIR output incorrect"
        results[case] = result.cycles
    return results


class TestPaperNumbers:
    def test_case1_single_core(self, measured):
        assert measured["case1"] == 2048  # paper EQueue: 2048; AIE sim: 2276

    def test_case2_sixteen_cores_unlimited(self, measured):
        assert measured["case2"] == 143  # paper: 143 = 15 warm-up + 128

    def test_case3_sixteen_cores_bandwidth(self, measured):
        assert measured["case3"] == 588  # paper: 588

    def test_case4_four_cores_balanced(self, measured):
        paper = AIE_REFERENCE["case4"]
        deviation = abs(measured["case4"] - paper["equeue_paper"]) / paper[
            "equeue_paper"
        ]
        assert deviation < 0.005  # 540 vs 538: 0.37%

    def test_within_aie_simulator_envelope(self, measured):
        """Against Xilinx's own simulator the paper accepts ~10% (case 1);
        our model must stay inside the same envelope."""
        for case in ("case1", "case4"):
            row = compare_with_aie(case, measured[case])
            assert abs(row.vs_aie_sim) < 0.11, (case, row.vs_aie_sim)

    def test_case_ordering(self, measured):
        """The §VII design-improvement narrative: 16 cores beat 1; adding
        real bandwidth slows them; rebalancing to 4 cores recovers most of
        it with a quarter of the hardware."""
        assert measured["case2"] < measured["case4"] < measured["case3"]
        assert measured["case3"] < measured["case1"]


class TestWarmup:
    def test_case3_warmup_shape(self):
        """First output emerges after ~5 cycles/stage x 16 stages; the
        paper reports 79 (we measure first-output-time - 1 = 79)."""
        cfg = PAPER_CASES["case3"]
        assert cfg.n_cores * cfg.stage_latency - 1 == 79

    def test_case4_steady_state_has_no_stalls(self):
        """Fig. 14: after warm-up the 4-core system streams one group per
        4 cycles with no gaps."""
        cfg = PAPER_CASES["case4"]
        assert cfg.group_period == cfg.chunks_per_core == 4
        total_steady = cfg.groups * cfg.group_period
        assert cfg.expected_cycles - total_steady == cfg.expected_warmup
