"""Integration: generated programs survive the textual format at scale.

The Fig. 7 workflow stores EQueue programs as .mlir files.  These tests
print a *complete generated case study* (hundreds of ops, nested regions,
every dialect), re-parse it, and simulate the reparsed module — results
must be identical to simulating the original."""

import numpy as np
import pytest

from repro.dialects.linalg import ConvDims
from repro.generators.fir import FIRConfig, build_fir_program, fir_reference
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.ir import parse_module, print_op, verify
from repro.sim import simulate
from tests.conftest import conv2d_reference


class TestSystolicRoundtrip:
    @pytest.mark.parametrize("dataflow", ["WS", "OS"])
    def test_print_parse_simulate(self, dataflow, rng):
        dims = ConvDims(n=2, c=2, h=5, w=5, fh=2, fw=2)
        cfg = SystolicConfig(dataflow, 2, 2, dims)
        program = build_systolic_program(cfg)

        text = print_op(program.module)
        assert len(text.splitlines()) > 100  # a real program, not a toy
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_op(reparsed) == text

        ifmap = rng.integers(-3, 4, (2, 5, 5)).astype(np.int32)
        weights = rng.integers(-3, 4, (2, 2, 2, 2)).astype(np.int32)
        inputs = program.prepare_inputs(ifmap, weights)

        original = simulate(program.module, inputs=inputs)
        roundtripped = simulate(reparsed, inputs=inputs)
        assert roundtripped.cycles == original.cycles
        # Output buffers hold identical data.
        out_name = "out_sram" if dataflow in ("WS", "IS") else "out_flat"
        assert np.array_equal(
            roundtripped.buffer(out_name), original.buffer(out_name)
        )
        assert np.array_equal(
            program.extract_ofmap(roundtripped),
            conv2d_reference(ifmap, weights),
        )


class TestFIRRoundtrip:
    def test_pipeline_through_text(self, rng):
        cfg = FIRConfig(n_cores=4, bandwidth=4, samples=64)
        program = build_fir_program(cfg)
        text = print_op(program.module)
        reparsed = parse_module(text)
        verify(reparsed)
        assert print_op(reparsed) == text

        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
        inputs = program.prepare_inputs(samples, coeffs)
        result = simulate(reparsed, inputs=inputs)
        assert result.cycles == cfg.expected_cycles
        output = result.buffer("sout").reshape(-1)[: cfg.samples]
        assert np.array_equal(
            output, fir_reference(samples, coeffs, cfg.samples)
        )
