"""Integration: Fig. 11 (lowering-stage metrics) and Fig. 12 (scalability).

Shape assertions, not absolute numbers: orderings, monotonicities, and the
dataflow trade-offs the paper reports.
"""

import numpy as np
import pytest

from repro.analysis import paper_sweep_spec, run_sweep
from repro.dialects.linalg import ConvDims
from repro.generators.pipeline import STAGES, LoweringPipeline
from repro.generators.systolic import SystolicConfig


@pytest.fixture(scope="module")
def fig11_results():
    # A scaled-down instance of the paper's H=W in {4..32}, F=3, C=3, N=4.
    pipeline = LoweringPipeline(
        dims=ConvDims(n=4, c=3, h=8, w=8, fh=3, fw=3), dataflow="WS"
    )
    return pipeline.run_all()


class TestFig11:
    def test_runtime_decreases_along_stages(self, fig11_results):
        cycles = [fig11_results[stage].cycles for stage in STAGES]
        assert cycles == sorted(cycles, reverse=True), cycles

    def test_sram_bw_grows_linalg_to_affine(self, fig11_results):
        assert (
            fig11_results["affine"].sram_read_bw
            > fig11_results["linalg"].sram_read_bw
        )
        assert (
            fig11_results["affine"].sram_write_bw
            > fig11_results["linalg"].sram_write_bw
        )

    def test_register_bw_appears_at_reassign(self, fig11_results):
        for stage in ("linalg", "affine"):
            assert fig11_results[stage].register_read_bw == 0
            assert fig11_results[stage].register_write_bw == 0
        for stage in ("reassign", "systolic"):
            assert fig11_results[stage].register_read_bw > 0

    def test_all_stages_functionally_identical(self, fig11_results):
        reference = fig11_results["linalg"].ofmap
        for stage in STAGES:
            assert np.array_equal(fig11_results[stage].ofmap, reference)

    def test_systolic_execution_time_is_highest(self, fig11_results):
        """Fig. 11a: detail costs wall-clock time — the systolic stage is
        the slowest to *simulate* though fastest in simulated cycles."""
        times = {s: fig11_results[s].execution_time_s for s in STAGES}
        assert times["systolic"] > times["linalg"]


class TestFig12:
    @pytest.fixture(scope="class")
    def sweep_points(self):
        return run_sweep(paper_sweep_spec(), use_des=False)

    def test_dataflow_tradeoffs(self, sweep_points):
        """Fig. 12a/b's message: the dataflows trade cycles against SRAM
        bandwidth, and no single dataflow dominates the design space.

        In our timing model (documented in EXPERIMENTS.md): every dataflow
        wins on cycles for some workload/array combination, and OS has the
        lowest ofmap-write bandwidth demand because partial sums accumulate
        locally instead of streaming through the SRAM every cycle."""
        from collections import Counter, defaultdict

        groups = defaultdict(dict)
        for point in sweep_points:
            key = (point.config.array_height, point.config.dims)
            groups[key][point.dataflow] = point.cycles
        wins = Counter(min(row, key=row.get) for row in groups.values())
        assert set(wins) == {"WS", "IS", "OS"}, wins

        by_dataflow = {"WS": [], "IS": [], "OS": []}
        for point in sweep_points:
            by_dataflow[point.dataflow].append(point.peak_write_bw_x_portion)
        mean_bw = {k: np.mean(v) for k, v in by_dataflow.items()}
        assert mean_bw["OS"] < mean_bw["IS"] < mean_bw["WS"]

    def test_execution_time_proportional_to_cycles(self):
        """Fig. 12a: DES wall-clock grows with simulated cycles."""
        import time

        from repro.generators.systolic import build_systolic_program
        from repro.sim import simulate

        def measure(size):
            dims = ConvDims(n=1, c=2, h=size, w=size, fh=2, fw=2)
            cfg = SystolicConfig("WS", 4, 4, dims)
            program = build_systolic_program(cfg)
            rng = np.random.default_rng(0)
            inputs = program.prepare_inputs(
                rng.integers(-2, 3, (2, size, size)).astype(np.int32),
                rng.integers(-2, 3, (1, 2, 2, 2)).astype(np.int32),
            )
            start = time.perf_counter()
            result = simulate(program.module, inputs=inputs)
            return time.perf_counter() - start, result.cycles

        measured = [measure(size) for size in (4, 8, 12)]
        times = [t for t, _ in measured]
        cycles = [c for _, c in measured]
        assert cycles == sorted(cycles)
        # Wall-clock should grow with cycle count (allowing noise: the
        # largest run must be slower than the smallest).  A CPU
        # contention spike can momentarily invert even that on a shared
        # single-CPU box, so on inversion compare best-of-two instead.
        if times[-1] <= times[0]:
            times = [
                min(old, measure(size)[0])
                for old, size in zip(times, (4, 8, 12))
            ]
        assert times[-1] > times[0]

    def test_iteration_rule_identifies_good_shapes(self):
        """§VI-E's design rule: loop iterations are the dominant factor in
        choosing an array shape.  The cycle-optimal shape always has an
        iteration count within a few percent of the minimum (the residual
        difference is the per-fold fill term the rule ignores), and
        :func:`best_array_shape` — which breaks iteration ties by predicted
        cycles — finds the exact optimum."""
        from repro.analysis import best_array_shape, predicted_cycles

        dims = ConvDims(n=32, c=4, h=24, w=24, fh=4, fw=4)
        shapes = [(2, 32), (4, 16), (8, 8), (16, 4), (32, 2)]
        for dataflow in ("WS", "IS", "OS"):
            stats = [
                (
                    SystolicConfig(dataflow, h, w, dims).loop_iterations,
                    SystolicConfig(dataflow, h, w, dims).expected_cycles,
                    (h, w),
                )
                for h, w in shapes
            ]
            min_iterations = min(s[0] for s in stats)
            optimal = min(stats, key=lambda s: s[1])
            assert optimal[0] <= min_iterations * 1.05
            chosen = best_array_shape(dataflow, dims, total_pes=64)
            assert predicted_cycles(dataflow, dims, *chosen) == optimal[1]
