"""Integration: Fig. 9 — EQueue DES vs SCALE-Sim on a 4x4 WS array.

The paper's claim: "Our EQueue-based simulation matches SCALE-Sim's
results" for cycles and SRAM ofmap write bandwidth, across ifmap sizes
(fixed 2x2x3 weights) and weight sizes (fixed 32x32 ifmap).
"""

import numpy as np
import pytest

from repro.baselines import ScaleSimConfig, run_scalesim
from repro.dialects.linalg import ConvDims
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.sim import simulate
from tests.conftest import conv2d_reference

IFMAP_SIZES = [2, 4, 8, 16]          # paper: up to 32 (kept small for CI)
WEIGHT_SIZES = [2, 4, 8]


def des_result(cfg: SystolicConfig, seed=0):
    rng = np.random.default_rng(seed)
    dims = cfg.dims
    ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(np.int32)
    weights = rng.integers(
        -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
    ).astype(np.int32)
    program = build_systolic_program(cfg)
    result = simulate(program.module, inputs=program.prepare_inputs(ifmap, weights))
    ofmap = program.extract_ofmap(result)
    assert np.array_equal(ofmap, conv2d_reference(ifmap, weights))
    return result


class TestFig9aB:
    """Vary ifmap, fixed 2x2x3 weights, N=1 (Fig. 9a-b)."""

    @pytest.mark.parametrize("size", IFMAP_SIZES)
    def test_cycles_match_scalesim(self, size):
        dims = ConvDims(n=1, c=3, h=size, w=size, fh=2, fw=2)
        equeue_cfg = SystolicConfig("WS", 4, 4, dims)
        scalesim = run_scalesim(ScaleSimConfig("WS", 4, 4, dims))
        des = des_result(equeue_cfg)
        assert des.cycles == scalesim.cycles

    @pytest.mark.parametrize("size", IFMAP_SIZES)
    def test_write_bw_matches_scalesim(self, size):
        dims = ConvDims(n=1, c=3, h=size, w=size, fh=2, fw=2)
        equeue_cfg = SystolicConfig("WS", 4, 4, dims)
        scalesim = run_scalesim(ScaleSimConfig("WS", 4, 4, dims))
        des = des_result(equeue_cfg)
        report = des.summary.memory_named("ofmap_mem")
        measured_bw = report.bytes_written / des.cycles
        assert measured_bw == pytest.approx(scalesim.avg_ofmap_write_bw)

    def test_cycles_grow_with_ifmap(self):
        cycles = []
        for size in IFMAP_SIZES:
            dims = ConvDims(n=1, c=3, h=size, w=size, fh=2, fw=2)
            cycles.append(des_result(SystolicConfig("WS", 4, 4, dims)).cycles)
        assert cycles == sorted(cycles)
        assert cycles[-1] > cycles[0] * 5  # superlinear growth in area


class TestFig9cD:
    """Vary weights, fixed larger ifmap (Fig. 9c-d)."""

    @pytest.mark.parametrize("filt", WEIGHT_SIZES)
    def test_cycles_match_scalesim(self, filt):
        dims = ConvDims(n=1, c=3, h=16, w=16, fh=filt, fw=filt)
        equeue_cfg = SystolicConfig("WS", 4, 4, dims)
        scalesim = run_scalesim(ScaleSimConfig("WS", 4, 4, dims))
        des = des_result(equeue_cfg)
        assert des.cycles == scalesim.cycles

    def test_cycles_grow_with_weights(self):
        cycles = []
        for filt in WEIGHT_SIZES:
            dims = ConvDims(n=1, c=3, h=16, w=16, fh=filt, fw=filt)
            cycles.append(des_result(SystolicConfig("WS", 4, 4, dims)).cycles)
        assert cycles == sorted(cycles)
