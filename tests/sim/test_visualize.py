"""Tests for the ASCII trace visualizer."""

import numpy as np

from repro.sim.tracing import TraceRecorder
from repro.sim.visualize import render_lanes, render_trace, utilization


def _recorder(entries):
    recorder = TraceRecorder()
    for tid, start, duration in entries:
        recorder.record("op", "operation", "Processor", tid, start, duration)
    return recorder


class TestRenderLanes:
    def test_empty(self):
        assert render_lanes([]) == "(empty trace)"

    def test_single_busy_block(self):
        recorder = _recorder([("pe", 0, 8)])
        text = render_trace(recorder, width=8)
        lane = [line for line in text.splitlines() if line.startswith("pe")][0]
        assert lane == "pe |########|"

    def test_gap_shows_idle(self):
        recorder = _recorder([("pe", 0, 2), ("pe", 6, 2)])
        text = render_trace(recorder, width=8)
        lane = [line for line in text.splitlines() if line.startswith("pe")][0]
        assert lane == "pe |##....##|"

    def test_lane_selection_and_order(self):
        recorder = _recorder([("b", 0, 4), ("a", 0, 4)])
        text = render_trace(recorder, width=4, lanes=["a", "b"])
        lines = text.splitlines()[1:]
        assert lines[0].startswith("a ")
        assert lines[1].startswith("b ")

    def test_default_order_is_first_appearance(self):
        recorder = _recorder([("z", 0, 1), ("a", 1, 1)])
        lines = render_trace(recorder, width=4).splitlines()[1:]
        assert lines[0].startswith("z")

    def test_zero_duration_marks_one_column(self):
        recorder = _recorder([("pe", 2, 0), ("pe", 0, 8)])
        text = render_trace(recorder, width=8)
        assert "#" in text

    def test_window_clipping(self):
        recorder = _recorder([("pe", 0, 100)])
        text = render_lanes(recorder.records, width=10, start=50, end=60)
        lane = [line for line in text.splitlines() if line.startswith("pe")][0]
        assert lane == "pe |##########|"


class TestUtilization:
    def test_fully_busy(self):
        recorder = _recorder([("pe", 0, 10)])
        assert utilization(recorder, "pe") == 1.0

    def test_partially_busy(self):
        recorder = _recorder([("pe", 0, 2), ("pe", 8, 2), ("other", 0, 10)])
        assert utilization(recorder, "pe") == 0.4

    def test_unknown_tid(self):
        recorder = _recorder([("pe", 0, 10)])
        assert utilization(recorder, "ghost") == 0.0


class TestFIRStallVisualization:
    def test_case3_shows_the_three_quarters_stall(self):
        """End-to-end: render the §VII case-3 trace and measure the 25%
        core utilization the paper derives from Fig. 13."""
        from repro.generators.fir import PAPER_CASES, build_fir_program
        from repro.sim import EngineOptions, simulate

        cfg = PAPER_CASES["case3"]
        rng = np.random.default_rng(0)
        program = build_fir_program(cfg)
        result = simulate(
            program.module,
            EngineOptions(trace=True),
            inputs=program.prepare_inputs(
                rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32),
                rng.integers(-4, 5, cfg.taps).astype(np.int32),
            ),
        )
        # A cascade-gated core computes 1 cycle out of every 4.
        busy = utilization(result.trace, "aie_8", end=result.cycles)
        assert 0.15 < busy < 0.3
        text = render_trace(result.trace, width=60, lanes=["aie_8"])
        lane = text.splitlines()[1]
        assert "#" in lane and "." in lane  # visible stalls
