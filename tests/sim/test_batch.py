"""Tests for the batch-simulation subsystem (repro.sim.batch):
SweepRunner sharding/determinism and the cross-simulation compile cache."""

import numpy as np
import pytest

from repro.dialects.linalg import ConvDims
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.sim import (
    CompileCache,
    EngineOptions,
    SweepRunner,
    simulate,
    simulate_systolic_cached,
    structural_signature,
)
from repro.sim.plan import PlanCache


def _ws_config(**dims_kwargs) -> SystolicConfig:
    return SystolicConfig("WS", 4, 4, ConvDims(**dims_kwargs))


# Two conv shapes that generate the *identical* module: equal stream
# length (eh*ew = 25), stationary rows (fh*fw*c = 4), and filter count.
STRUCTURAL_TWINS = (
    _ws_config(n=2, c=4, h=5, w=5, fh=1, fw=1),
    _ws_config(n=2, c=1, h=6, w=6, fh=2, fw=2),
)


class TestStructuralSignature:
    def test_twins_share_signature(self):
        a, b = STRUCTURAL_TWINS
        assert structural_signature(a) == structural_signature(b)

    def test_signature_distinguishes_structure(self):
        base = _ws_config(n=2, c=4, h=5, w=5, fh=1, fw=1)
        other_dataflow = SystolicConfig("IS", 4, 4, base.dims)
        other_shape = SystolicConfig("WS", 2, 8, base.dims)
        other_stream = _ws_config(n=2, c=4, h=6, w=6, fh=1, fw=1)
        signatures = {
            structural_signature(cfg)
            for cfg in (base, other_dataflow, other_shape, other_stream)
        }
        assert len(signatures) == 4

    def test_twins_build_identical_modules(self):
        from repro.ir import print_op

        a, b = STRUCTURAL_TWINS
        assert print_op(build_systolic_program(a).module) == print_op(
            build_systolic_program(b).module
        )


class TestCompileCache:
    def test_module_reused_and_stats(self):
        cache = CompileCache()
        a, b = STRUCTURAL_TWINS
        cached_a = cache.lookup(a)
        cached_b = cache.lookup(b)
        assert cached_a.module is cached_b.module
        assert cached_a.plan_cache is cached_b.plan_cache
        assert cache.stats.programs_built == 1
        assert cache.stats.program_hits == 1
        cache.clear()
        assert cache.stats.programs_built == 0
        assert cache.lookup(a).module is not cached_a.module

    def test_fill_hooks_observe_builds_not_hits(self):
        """Fill hooks fire exactly once per built structure — the
        observability point for accounting compile work over the cache
        (a hit must never look like compile work)."""
        cache = CompileCache()
        fills = []
        cache.add_fill_hook(lambda sig, entry: fills.append((sig, entry)))
        a, b = STRUCTURAL_TWINS
        entry = cache.lookup(a)
        assert fills == [(structural_signature(a), entry)]
        cache.lookup(b)  # structural twin: a hit, no hook call
        assert len(fills) == 1
        cache.clear()
        cache.lookup(a)  # rebuild after clear: observed again
        assert len(fills) == 2

    def test_cached_simulation_matches_cold(self):
        """Cache hits stay cycle-identical to cold compiles."""
        cache = CompileCache()
        rng = np.random.default_rng(11)
        for cfg in STRUCTURAL_TWINS:
            dims = cfg.dims
            ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(
                np.int32
            )
            weights = rng.integers(
                -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
            ).astype(np.int32)
            cold_program = build_systolic_program(cfg)
            cold = simulate(
                cold_program.module,
                inputs=cold_program.prepare_inputs(ifmap, weights),
            )
            warm_program = cache.lookup(cfg).program(cfg)
            warm = simulate_systolic_cached(
                cfg,
                inputs=warm_program.prepare_inputs(ifmap, weights),
                cache=cache,
            )
            assert warm.cycles == cold.cycles == cfg.expected_cycles
            assert warm.summary.scheduler_events == (
                cold.summary.scheduler_events
            )
            for name in cold.buffers:
                assert (warm.buffer(name) == cold.buffer(name)).all(), name

    def test_plan_cache_counters_across_simulations(self):
        """The second structurally identical simulation compiles nothing:
        its plans all come from the shared cache (ProfilingSummary
        reports per-run deltas)."""
        cache = CompileCache()
        a, b = STRUCTURAL_TWINS
        rng = np.random.default_rng(3)

        def run(cfg):
            dims = cfg.dims
            ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(
                np.int32
            )
            weights = rng.integers(
                -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
            ).astype(np.int32)
            cached = cache.lookup(cfg)
            return cached.simulate(
                cached.program(cfg).prepare_inputs(ifmap, weights)
            )

        first = run(a)
        second = run(b)
        assert first.summary.plans_compiled > 0
        assert second.summary.plans_compiled == 0
        assert second.summary.plan_cache_hits > 0
        assert second.cycles == first.cycles == a.expected_cycles


class TestPlanCacheReuse:
    def test_attach_flushes_on_config_change(self):
        cfg = STRUCTURAL_TWINS[0]
        program = build_systolic_program(cfg)
        inputs = program.prepare_inputs(
            np.zeros((cfg.dims.c, cfg.dims.h, cfg.dims.w), np.int32),
            np.zeros(
                (cfg.dims.n, cfg.dims.c, cfg.dims.fh, cfg.dims.fw), np.int32
            ),
        )
        shared = PlanCache()
        simulate(program.module, inputs=inputs, plan_cache=shared)
        assert shared.plans
        # Same plan-relevant options: plans survive.
        simulate(program.module, inputs=inputs, plan_cache=shared)
        assert shared.plans
        # Different vectorization config: plans are flushed, then rebuilt.
        result = simulate(
            program.module,
            EngineOptions(vectorize_loops=False),
            inputs=inputs,
            plan_cache=shared,
        )
        assert result.summary.plans_compiled > 0
        assert result.cycles == cfg.expected_cycles

    def test_engines_attach_at_run_not_construction(self):
        """Constructing several engines on one cache before running any
        of them must not re-point the cache under the engine that
        executes first (attachment happens at run())."""
        from repro.sim import Engine

        cfg = STRUCTURAL_TWINS[0]
        program = build_systolic_program(cfg)
        inputs = program.prepare_inputs(
            np.zeros((cfg.dims.c, cfg.dims.h, cfg.dims.w), np.int32),
            np.zeros(
                (cfg.dims.n, cfg.dims.c, cfg.dims.fh, cfg.dims.fw), np.int32
            ),
        )
        shared = PlanCache()
        first = Engine(program.module, inputs=inputs, plan_cache=shared)
        second = Engine(program.module, inputs=inputs, plan_cache=shared)
        result_first = first.run()
        result_second = second.run()
        assert result_first.cycles == result_second.cycles
        assert result_first.summary.plans_compiled > 0
        assert result_second.summary.plans_compiled == 0
        assert result_second.summary.plan_cache_hits > 0


def _double(value: int) -> int:  # module-level: picklable for workers
    return value * 2


class TestSweepRunner:
    def test_serial_map(self):
        runner = SweepRunner(jobs=1)
        assert runner.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert not runner.fell_back

    def test_parallel_preserves_item_order(self):
        runner = SweepRunner(jobs=2)
        items = list(range(20, 0, -1))
        assert runner.map(_double, items) == [2 * i for i in items]

    def test_parallel_with_key_preserves_item_order(self):
        runner = SweepRunner(jobs=2, key=lambda x: x % 3)
        items = list(range(17))
        assert runner.map(_double, items) == [2 * i for i in items]

    def test_unpicklable_worker_falls_back_to_serial(self):
        runner = SweepRunner(jobs=2)
        assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert runner.fell_back

    def test_worker_exceptions_propagate(self):
        runner = SweepRunner(jobs=1)
        with pytest.raises(ZeroDivisionError):
            runner.map(lambda x: 1 // x, [1, 0])

    def test_group_aware_chunking_never_splits_groups(self):
        runner = SweepRunner(jobs=3, key=lambda x: x % 5)
        items = list(range(23))
        order = runner._order(items)
        chunks = runner._chunks(items, order)
        assert sorted(i for chunk in chunks for i in chunk) == items
        owner = {}
        for chunk_index, chunk in enumerate(chunks):
            for i in chunk:
                group = items[i] % 5
                assert owner.setdefault(group, chunk_index) == chunk_index

    def test_explicit_chunk_size(self):
        runner = SweepRunner(jobs=2, chunk_size=2)
        chunks = runner._chunks(list(range(5)), list(range(5)))
        assert chunks == [[0, 1], [2, 3], [4]]
