"""Tests for the operation-function library and the functional interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import interp, oplib
from repro.sim.oplib import OpFunction, OpLibError


class TestRegistry:
    def test_builtins_present(self):
        for signature in ("mac", "mul4", "mac4", "install"):
            assert signature in oplib.registered_signatures()

    def test_unknown_signature(self):
        with pytest.raises(OpLibError, match="register_op_function"):
            oplib.lookup("warp_drive")

    def test_duplicate_registration_rejected(self):
        fn = OpFunction("test_dup", 1, lambda: ())
        oplib.register_op_function(fn, replace=True)
        with pytest.raises(OpLibError, match="already registered"):
            oplib.register_op_function(fn)

    def test_callable_cycles(self):
        fn = OpFunction("test_dyn", lambda operands: len(operands), lambda *a: ())
        assert fn.cycle_count([1, 2, 3]) == 3
        fixed = OpFunction("test_fixed", 7, lambda: ())
        assert fixed.cycle_count([]) == 7


class TestMacOps:
    def test_mac_scalarish(self):
        (result,) = oplib.lookup("mac").func(3, 4, 5)
        assert np.asarray(result).item() == 17

    def test_mac_elementwise(self):
        a = np.array([1, 2]); b = np.array([3, 4]); c = np.array([5, 6])
        (result,) = oplib.lookup("mac").func(a, b, c)
        assert list(result) == [8, 14]

    def test_mul4_two_taps(self):
        acc = np.zeros(4, np.int64)
        window = np.array([1, 2, 3, 4, 5, 6], np.int64)
        coeffs = np.array([10, 1], np.int64)
        (result,) = oplib.lookup("mul4").func(acc, window, coeffs)
        # lane l: w[l]*10 + w[l+1]*1
        assert list(result) == [12, 23, 34, 45]

    def test_mac4_accumulates(self):
        acc = np.array([100, 100, 100, 100], np.int64)
        window = np.array([1, 1, 1, 1, 1], np.int64)
        coeffs = np.array([2, 3], np.int64)
        (result,) = oplib.lookup("mac4").func(acc, window, coeffs)
        assert list(result) == [105, 105, 105, 105]

    def test_base_offset(self):
        acc = np.zeros(4, np.int64)
        window = np.arange(20, dtype=np.int64)
        coeffs = np.array([1, 0], np.int64)
        (result,) = oplib.lookup("mul4").func(acc, window, coeffs, 10)
        assert list(result) == [10, 11, 12, 13]

    def test_window_too_short(self):
        with pytest.raises(OpLibError, match="window too short"):
            oplib.lookup("mul4").func(np.zeros(4), np.zeros(3), np.zeros(2))

    def test_bad_coeff_chunk(self):
        with pytest.raises(OpLibError, match="2-tap"):
            oplib.lookup("mac4").func(np.zeros(4), np.zeros(8), np.zeros(3))


class TestInterp:
    @pytest.mark.parametrize(
        "name,a,b,expected",
        [
            ("arith.addi", 3, 4, 7),
            ("arith.subi", 3, 4, -1),
            ("arith.muli", 3, 4, 12),
            ("arith.divsi", 7, 2, 3),
            ("arith.divsi", -7, 2, -3),  # trunc toward zero, like C
            ("arith.remsi", 7, 2, 1),
            ("arith.maxsi", 3, 4, 4),
            ("arith.minsi", 3, 4, 3),
            ("arith.addf", 1.5, 2.0, 3.5),
            ("arith.andi", 0b1100, 0b1010, 0b1000),
            ("arith.ori", 0b1100, 0b1010, 0b1110),
            ("arith.xori", 0b1100, 0b1010, 0b0110),
            ("arith.shli", 3, 2, 12),
            ("arith.shrsi", -8, 2, -2),
        ],
    )
    def test_binaries(self, name, a, b, expected):
        assert interp.evaluate_arith(name, [a, b], {}) == expected

    def test_division_by_zero(self):
        with pytest.raises(interp.InterpError):
            interp.evaluate_arith("arith.divsi", [1, 0], {})

    @pytest.mark.parametrize(
        "pred,expected",
        [("eq", 0), ("ne", 1), ("slt", 1), ("sle", 1), ("sgt", 0), ("sge", 0)],
    )
    def test_cmpi(self, pred, expected):
        assert interp.evaluate_arith(
            "arith.cmpi", [3, 5], {"predicate": pred}
        ) == expected

    def test_select(self):
        assert interp.evaluate_arith("arith.select", [1, "a", "b"], {}) == "a"
        assert interp.evaluate_arith("arith.select", [0, "a", "b"], {}) == "b"

    def test_elementwise_numpy(self):
        a = np.array([1, 2, 3])
        result = interp.evaluate_arith("arith.muli", [a, a], {})
        assert list(result) == [1, 4, 9]

    def test_numpy_dtype_for(self):
        from repro import ir

        assert interp.numpy_dtype_for(ir.i32) == np.dtype(np.int32)
        assert interp.numpy_dtype_for(ir.f64) == np.dtype(np.float64)
        assert interp.numpy_dtype_for(ir.index) == np.dtype(np.int64)
        assert interp.numpy_dtype_for(ir.i8) == np.dtype(np.int8)

    def test_unknown_op(self):
        with pytest.raises(interp.InterpError):
            interp.evaluate_arith("arith.nonsense", [1], {})


@settings(max_examples=60, deadline=None)
@given(
    st.integers(-(2**20), 2**20),
    st.integers(-(2**20), 2**20).filter(lambda v: v != 0),
)
def test_divsi_remsi_invariant(a, b):
    """C-style identity: a == divsi(a,b)*b + remsi(a,b)."""
    quotient = interp.evaluate_arith("arith.divsi", [a, b], {})
    remainder = interp.evaluate_arith("arith.remsi", [a, b], {})
    assert quotient * b + remainder == a
    assert abs(remainder) < abs(b)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=5, max_size=12),
       st.integers(-10, 10), st.integers(-10, 10))
def test_mul4_matches_direct_formula(window, c0, c1):
    window_arr = np.array(window, np.int64)
    (result,) = oplib.lookup("mul4").func(
        np.zeros(4, np.int64), window_arr, np.array([c0, c1], np.int64)
    )
    for lane in range(4):
        assert result[lane] == window_arr[lane] * c0 + window_arr[lane + 1] * c1
