"""Differential tests: the event-wheel scheduler is bit-identical to the heap.

``EngineOptions.scheduler`` switches between the tiered event-wheel
scheduler (``"wheel"``, the default — microtask ring + calendar-queue
buckets + overflow heap) and the classic binary-heap reference
(``"heap"``).  These tests run representative workloads — the systolic
generator under all three dataflows, the FIR cascade, and the
lowering-pipeline stages — through *both* schedulers and assert that
every observable is identical:

* simulated cycles and the scheduler-event count,
* final buffer contents,
* per-processor busy time and executed-entry counts,
* per-memory traffic statistics and schedule-queue busy time,
* per-connection traffic and busy time.

Both compiled-plan and interpreted execution are exercised, because the
scheduler must be interchangeable under either engine strategy; the
sweep-worker path of :mod:`repro.sim.batch` is covered too.  Only the
tier *attribution* counters (microtask/wheel/heap) may differ between
backends — by construction: the heap serves every event from one tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dialects.linalg import ConvDims
from repro.sim import Engine, EngineOptions


def run_both_schedulers(build, mode="plan", **option_overrides):
    """Build + simulate a program under the wheel and heap schedulers and
    assert every observable matches.  ``build()`` must return
    ``(module, inputs)`` freshly each call (engines mutate buffer state).
    """
    engines = []
    results = []
    for scheduler in ("wheel", "heap"):
        module, inputs = build()
        options = EngineOptions(
            scheduler=scheduler,
            mode=mode,
            **option_overrides,
        )
        engine = Engine(module, options, inputs)
        results.append(engine.run())
        engines.append(engine)
    wheel, heap = results
    assert wheel.cycles == heap.cycles
    assert wheel.truncated == heap.truncated
    assert (
        wheel.summary.scheduler_events == heap.summary.scheduler_events
    )
    assert wheel.summary.launches_executed == heap.summary.launches_executed
    assert wheel.buffers.keys() == heap.buffers.keys()
    for name in wheel.buffers:
        np.testing.assert_array_equal(
            wheel.buffers[name].array,
            heap.buffers[name].array,
            err_msg=f"buffer {name!r} diverged",
        )
    ew, eh = engines
    assert ew.sim.kind == "wheel" and eh.sim.kind == "heap"
    # Tier attribution: the wheel's tiers partition the same event count
    # the heap serves entirely from its single tier.
    sw = wheel.summary
    assert (
        sw.microtask_events + sw.wheel_events + sw.heap_events
        == sw.scheduler_events
    )
    assert heap.summary.heap_events == heap.summary.scheduler_events
    assert heap.summary.microtask_events == 0
    assert heap.summary.wheel_events == 0
    for pw, ph in zip(ew.processors, eh.processors):
        assert pw.name == ph.name
        assert pw.busy_cycles == ph.busy_cycles, pw.name
        assert pw.executed_events == ph.executed_events, pw.name
    for mw, mh in zip(ew.memories, eh.memories):
        assert mw.name == mh.name
        assert (mw.bytes_read, mw.bytes_written, mw.reads, mw.writes) == (
            mh.bytes_read, mh.bytes_written, mh.reads, mh.writes
        ), mw.name
        if mw.queue is not None and mh.queue is not None:
            assert mw.queue.total_busy_cycles == mh.queue.total_busy_cycles, (
                mw.name
            )
    for cw, ch in zip(ew.connections, eh.connections):
        assert cw.name == ch.name
        assert (cw.bytes_read, cw.bytes_written, cw.transfers) == (
            ch.bytes_read, ch.bytes_written, ch.transfers
        ), cw.name
        assert (
            cw.read_queue.total_busy_cycles
            == ch.read_queue.total_busy_cycles
        )
        assert (
            cw.write_queue.total_busy_cycles
            == ch.write_queue.total_busy_cycles
        )
    return wheel, heap


# ---------------------------------------------------------------------------
# Generator workloads
# ---------------------------------------------------------------------------


class TestGeneratorsDifferential:
    @pytest.mark.parametrize("mode", ["plan", "interpret", "codegen"])
    @pytest.mark.parametrize("dataflow", ["WS", "IS", "OS"])
    def test_systolic(self, dataflow, mode, rng):
        from repro.generators.systolic import (
            SystolicConfig,
            build_systolic_program,
        )

        dims = ConvDims(n=2, c=2, h=6, w=6, fh=2, fw=2)
        ifmap = rng.integers(-3, 4, (2, 6, 6)).astype(np.int32)
        weights = rng.integers(-3, 4, (2, 2, 2, 2)).astype(np.int32)

        def build():
            program = build_systolic_program(
                SystolicConfig(dataflow, 3, 3, dims)
            )
            return program.module, program.prepare_inputs(ifmap, weights)

        wheel, _ = run_both_schedulers(build, mode=mode)
        # The workload's zero-delay resumes really ride the microtask ring
        # and its short read/write latencies ride the calendar wheel.
        assert wheel.summary.microtask_events > 0
        assert wheel.summary.wheel_events > 0

    @pytest.mark.parametrize("n_cores,bandwidth", [(1, None), (4, 4)])
    def test_fir(self, n_cores, bandwidth, rng):
        from repro.generators.fir import (
            FIRConfig,
            build_fir_program,
            fir_reference,
        )

        cfg = FIRConfig(n_cores=n_cores, bandwidth=bandwidth, samples=64)
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)

        def build():
            program = build_fir_program(cfg)
            return program.module, program.prepare_inputs(samples, coeffs)

        wheel, _ = run_both_schedulers(build)
        # The simulation still computes the right FIR answer.
        program = build_fir_program(cfg)
        reference = fir_reference(samples, coeffs, cfg.samples)
        np.testing.assert_array_equal(
            program.extract_output(wheel), reference
        )

    @pytest.mark.parametrize("stage", ["linalg", "affine", "reassign"])
    def test_pipeline_stage(self, stage):
        from repro.generators.pipeline import LoweringPipeline

        pipeline = LoweringPipeline(
            dims=ConvDims(n=2, c=2, h=6, w=6, fh=3, fw=3)
        )
        ifmap, weight = pipeline.make_data()

        def build():
            module = pipeline.build_stage(stage)
            return module, {"ifmap": ifmap, "weight": weight}

        run_both_schedulers(build)


# ---------------------------------------------------------------------------
# Engine-level semantics
# ---------------------------------------------------------------------------


class TestSchedulerSemantics:
    def test_max_cycles_truncation_matches(self, rng):
        """Truncated runs stop at the same boundary on both backends."""
        from repro.generators.systolic import (
            SystolicConfig,
            build_systolic_program,
        )

        dims = ConvDims(n=1, c=2, h=6, w=6, fh=2, fw=2)
        ifmap = rng.integers(-3, 4, (2, 6, 6)).astype(np.int32)
        weights = rng.integers(-3, 4, (1, 2, 2, 2)).astype(np.int32)

        def build():
            program = build_systolic_program(SystolicConfig("WS", 2, 2, dims))
            return program.module, program.prepare_inputs(ifmap, weights)

        wheel, heap = run_both_schedulers(build, max_cycles=40)
        assert wheel.truncated
        assert wheel.cycles == heap.cycles == 40

    def test_unknown_scheduler_rejected(self):
        from repro import ir
        from repro.sim import SimulationError

        with pytest.raises(SimulationError, match="unknown scheduler"):
            Engine(ir.create_module(), EngineOptions(scheduler="quantum"))

    def test_summary_reports_scheduler_tiers(self, rng):
        from repro.generators.fir import FIRConfig, build_fir_program

        cfg = FIRConfig(n_cores=1, bandwidth=None, samples=16)
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
        program = build_fir_program(cfg)
        result = Engine(
            program.module,
            EngineOptions(),
            program.prepare_inputs(samples, coeffs),
        ).run()
        assert result.summary.scheduler == "wheel"
        text = result.summary.format()
        assert "scheduler tiers:" in text
        assert "microtask" in text


# ---------------------------------------------------------------------------
# The batch / sweep-worker path
# ---------------------------------------------------------------------------


class TestSweepWorkerDifferential:
    def test_measure_systolic_point_scheduler_override(self):
        """The spawn-safe sweep worker produces identical measurements
        under both schedulers (the option-override payload form)."""
        from repro.generators.systolic import SystolicConfig
        from repro.sim.batch import measure_systolic_point

        dims = ConvDims(n=2, c=2, h=4, w=4, fh=2, fw=2)
        cfg = SystolicConfig("OS", 2, 2, dims)
        wheel = measure_systolic_point((cfg, 11, {"scheduler": "wheel"}))
        heap = measure_systolic_point((cfg, 11, {"scheduler": "heap"}))
        default = measure_systolic_point((cfg, 11))
        # Overrides may restate any EngineOptions field, including the
        # verify_module default the worker itself supplies.
        verified = measure_systolic_point(
            (cfg, 11, {"scheduler": "heap", "verify_module": True})
        )
        assert wheel == heap == default == verified
