"""Tests for the component library."""

import numpy as np
import pytest

from repro.sim.components import (
    Buffer,
    CacheModel,
    ComponentError,
    ComponentGroup,
    ConnectionModel,
    DMAModel,
    MemoryModel,
    MemorySpec,
    ProcessorModel,
    memory_spec,
    processor_spec,
    register_memory_kind,
)
from repro.sim.kernel import Simulator


class TestRegistries:
    def test_builtin_memory_kinds(self):
        assert memory_spec("Register").cycles_per_access == 0
        assert memory_spec("SRAM").cycles_per_access == 1
        assert memory_spec("DRAM").cycles_per_access == 10
        assert memory_spec("Stream").cycles_per_access == 0

    def test_unknown_kind_raises(self):
        with pytest.raises(ComponentError, match="register_memory_kind"):
            memory_spec("Hologram")
        with pytest.raises(ComponentError):
            processor_spec("Quantum")

    def test_custom_kind_registration(self):
        register_memory_kind("TestScratch", MemorySpec(cycles_per_access=3))
        assert memory_spec("TestScratch").cycles_per_access == 3


class TestHierarchy:
    def test_paths(self):
        group = ComponentGroup("accel")
        pe = ProcessorModel("pe0", "MAC")
        group.add("PE0", pe)
        assert pe.path == "accel.PE0"

    def test_nested_lookup(self):
        top = ComponentGroup("accel")
        sub = ComponentGroup("cluster")
        pe = ProcessorModel("pe", "MAC")
        sub.add("PE", pe)
        top.add("Cluster", sub)
        assert top.lookup("Cluster.PE") is pe

    def test_duplicate_name_rejected(self):
        group = ComponentGroup("g")
        group.add("A", ProcessorModel("a", "MAC"))
        with pytest.raises(ComponentError, match="duplicate"):
            group.add("A", ProcessorModel("b", "MAC"))

    def test_missing_lookup_raises(self):
        group = ComponentGroup("g")
        with pytest.raises(ComponentError, match="no subcomponent"):
            group.lookup("Nope")


class TestMemoryTiming:
    def _mem(self, kind="SRAM", ports=1):
        sim = Simulator()
        mem = MemoryModel("m", kind, size=1024, data_bits=32, ports=ports)
        mem.attach(sim)
        return mem

    def test_register_access_free(self):
        mem = self._mem("Register")
        assert mem.access_cycles(100, is_write=False) == 0

    def test_sram_scales_with_elements_and_ports(self):
        assert self._mem("SRAM", ports=1).access_cycles(8, False) == 8
        assert self._mem("SRAM", ports=2).access_cycles(8, False) == 4
        assert self._mem("SRAM", ports=4).access_cycles(3, False) == 1

    def test_dram_latency(self):
        assert self._mem("DRAM").access_cycles(1, False) == 10

    def test_traffic_accounting(self):
        mem = self._mem()
        mem.record_read(64)
        mem.record_write(32)
        assert mem.bytes_read == 64
        assert mem.bytes_written == 32
        assert mem.reads == 1 and mem.writes == 1

    def test_capacity_strict(self):
        mem = self._mem()
        mem.allocate(1000)
        with pytest.raises(ComponentError, match="capacity"):
            mem.allocate(100, strict=True)
        mem.deallocate(2000)
        assert mem.allocated_elements == 0


class TestCache:
    def test_miss_then_hit(self):
        sim = Simulator()
        cache = CacheModel("c", size=1024, data_bits=32, line_elements=8,
                           lines=4, hit_cycles=1, miss_cycles=10)
        cache.attach(sim)
        assert cache.get_read_or_write_cycles(False, address=0) == 10  # miss
        assert cache.get_read_or_write_cycles(False, address=3) == 1   # hit
        assert cache.hits == 1 and cache.misses == 1

    def test_conflict_eviction(self):
        sim = Simulator()
        cache = CacheModel("c", size=1024, data_bits=32, line_elements=1,
                           lines=2, hit_cycles=1, miss_cycles=10)
        cache.attach(sim)
        assert cache.get_read_or_write_cycles(False, 0) == 10
        assert cache.get_read_or_write_cycles(False, 2) == 10  # maps to line 0
        assert cache.get_read_or_write_cycles(False, 0) == 10  # evicted


class TestConnection:
    def test_transfer_cycles(self):
        conn = ConnectionModel("c", "Streaming", bandwidth=4)
        assert conn.transfer_cycles(16) == 4
        assert conn.transfer_cycles(1) == 1
        assert conn.transfer_cycles(17) == 5

    def test_infinite_bandwidth(self):
        conn = ConnectionModel("c", "Streaming", bandwidth=0)
        assert conn.transfer_cycles(10_000) == 0

    def test_streaming_has_independent_channels(self):
        sim = Simulator()
        conn = ConnectionModel("c", "Streaming", bandwidth=4)
        conn.attach(sim)
        assert conn.read_queue is not conn.write_queue

    def test_window_shares_channel(self):
        sim = Simulator()
        conn = ConnectionModel("c", "Window", bandwidth=4)
        conn.attach(sim)
        assert conn.read_queue is conn.write_queue

    def test_bad_kind(self):
        with pytest.raises(ComponentError):
            ConnectionModel("c", "Fancy", bandwidth=4)

    def test_peak_bandwidth(self):
        conn = ConnectionModel("c", "Streaming", bandwidth=4)
        conn.record(16, 4, is_write=True)
        conn.record(8, 4, is_write=False)
        assert conn.peak_bandwidth == 4.0
        assert conn.bytes_written == 16
        assert conn.bytes_read == 8


class TestBufferAndDMA:
    def test_buffer_shape_and_bytes(self):
        sim = Simulator()
        mem = MemoryModel("m", "SRAM", 1024, 32)
        mem.attach(sim)
        buf = Buffer("b", mem, (4, 4), np.dtype(np.int32), 32)
        assert buf.num_elements == 16
        assert buf.nbytes == 64
        assert buf.array.shape == (4, 4)
        assert not buf.array.any()

    def test_dma_is_processor(self):
        dma = DMAModel("d")
        assert isinstance(dma, ProcessorModel)
        assert dma.kind == "DMA"

    def test_enqueue_wakes(self):
        sim = Simulator()
        proc = ProcessorModel("p", "MAC")
        proc.wake = sim.event("wake")
        from repro.sim.components import EventEntry

        entry = EventEntry(
            kind="launch", dep=sim.event(), done=sim.event(), payload=None
        )
        proc.enqueue(entry)
        assert proc.wake.triggered
        assert list(proc.queue) == [entry]
