"""Additional engine coverage: cache components, DRAM, hierarchy lookup at
runtime, parallel interpretation, memref ops, fill/matmul handlers, posted
access accounting, window memcpy."""

import numpy as np
import pytest

from repro import ir
from repro.dialects import affine, arith, linalg, memref
from repro.dialects.equeue import EQueueBuilder
from repro.dialects.equeue import types as eqt
from repro.sim import simulate


def make_program():
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    return module, builder, EQueueBuilder(builder)


class TestCacheThroughEngine:
    def test_cache_hits_cheaper_than_misses(self):
        """Sequential walk over a Cache-kind memory: first touch of each
        line misses (10 cycles), the rest hit (1 cycle)."""
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        cache = eq.create_mem("Cache", 4096, ir.i32)
        buf = eq.alloc(cache, [32], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            def walk(b2, iv):
                EQueueBuilder(b2).read_element(buf_arg, [iv])

            affine.for_loop(b, 0, 32, body=walk)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        result = simulate(module)
        # 32 sequential reads over 8-element lines: 4 misses + 28 hits.
        assert result.cycles == 4 * 10 + 28 * 1

    def test_cache_random_strided_access_thrashes(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        cache = eq.create_mem("Cache", 4096, ir.i32)
        buf = eq.alloc(cache, [4096], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            def walk(b2, iv):
                inner = EQueueBuilder(b2)
                stride = arith.constant(b2, 512, ir.index)
                address = arith.muli(b2, iv, stride)
                inner.read_element(buf_arg, [address])

            affine.for_loop(b, 0, 8, body=walk)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        # Every 512-element stride lands on a new line: all misses.
        assert simulate(module).cycles == 8 * 10


class TestHierarchyAtRuntime:
    def test_get_comp_inside_launch(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5", name="kernel")
        pe = eq.create_proc("MAC", name="worker")
        grid = eq.create_comp("worker", [pe])
        regs = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(regs, [4], ir.i32, name="buf")
        start = eq.control_start()

        def body(b, grid_arg, buf_arg):
            inner = EQueueBuilder(b)
            worker = inner.get_comp(grid_arg, "worker", eqt.proc)
            sub, = inner.launch(
                inner.control_start(), worker, args=[buf_arg],
                body=lambda bb, arg: _mac_once(bb, arg),
            )
            inner.await_(sub)

        done, = eq.launch(start, kernel, args=[grid, buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 1

    def test_template_resolved_at_runtime(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5", name="kernel")
        pes = [eq.create_proc("MAC", name=f"pe_{i}") for i in range(3)]
        grid = eq.create_comp("pe_0 pe_1 pe_2", pes)
        regs = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(regs, [4], ir.i32)
        start = eq.control_start()

        def body(b, grid_arg, buf_arg):
            inner = EQueueBuilder(b)
            dones = []

            def sweep(b2, iv):
                nested = EQueueBuilder(b2)
                proc = b2.create(
                    "equeue.get_comp", [grid_arg, iv], [eqt.proc],
                    {"name_template": "pe_{0}"},
                ).result()
                done, = nested.launch(
                    nested.control_start(), proc, args=[buf_arg],
                    body=lambda bb, arg: _mac_once(bb, arg),
                )
                dones.append(done)

            affine.for_loop(b, 0, 3, body=sweep)

        done, = eq.launch(start, kernel, args=[grid, buf], body=body)
        eq.await_(done)
        # Three distinct PEs, all launched at ~t0: concurrent.
        assert simulate(module).cycles == 1


def _mac_once(b, buf_arg):
    inner = EQueueBuilder(b)
    data = inner.read(buf_arg)
    inner.op("mac", [data, data, data], [data.type])


class TestForeignOps:
    def test_parallel_interpreted_sequentially(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        regs = eq.create_mem("Register", 64, ir.i32)
        buf = eq.alloc(regs, [4, 4], ir.i32, name="grid_buf")
        start = eq.control_start()

        def body(b, buf_arg):
            def point(b2, i, j):
                inner = EQueueBuilder(b2)
                value = inner.read_element(buf_arg, [i, j])
                one = arith.constant(b2, 1, ir.i32)
                inner.write_element(
                    arith.addi(b2, value, one), buf_arg, [i, j]
                )

            affine.parallel(b, [0, 0], [4, 4], body=point)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        result = simulate(module)
        assert np.array_equal(result.buffer("grid_buf"), np.ones((4, 4)))
        # Sequential interpretation: 16 addi at 1 cycle each.
        assert result.cycles == 16

    def test_memref_copy_and_fill(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        a = memref.alloc(builder, [8], ir.i32)
        a.name_hint = "a"
        b_buf = memref.alloc(builder, [8], ir.i32)
        b_buf.name_hint = "b"
        seven = arith.constant(builder, 7, ir.i32)
        linalg.fill(builder, seven, a)
        memref.copy(builder, a, b_buf)
        start = eq.control_start()
        done, = eq.launch(start, kernel, body=lambda bb: None)
        eq.await_(done)
        result = simulate(module)
        assert list(result.buffer("b")) == [7] * 8

    def test_matmul_handler_cost_and_function(self, rng):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5", name="kernel")
        sram = eq.create_mem("SRAM", 4096, ir.i32, name="sram")
        a = eq.alloc(sram, [3, 4], ir.i32, name="a")
        b_buf = eq.alloc(sram, [4, 5], ir.i32, name="b")
        c = eq.alloc(sram, [3, 5], ir.i32, name="c")
        start = eq.control_start()

        def body(bb, a_arg, b_arg, c_arg):
            linalg.matmul(bb, a_arg, b_arg, c_arg)

        done, = eq.launch(start, kernel, args=[a, b_buf, c], body=body)
        eq.await_(done)
        am = rng.integers(-4, 5, (3, 4)).astype(np.int32)
        bm = rng.integers(-4, 5, (4, 5)).astype(np.int32)
        result = simulate(module, inputs={"a": am, "b": bm})
        assert np.array_equal(result.buffer("c"), am @ bm)
        assert result.cycles == 3 * 4 * 5 * 7  # macs * linalg_mac_cycles

    def test_dram_backed_loop(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        dram = eq.create_mem("DRAM", 1024, ir.i32)
        buf = eq.alloc(dram, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            def step(b2, iv):
                EQueueBuilder(b2).read_element(buf_arg, [iv])

            affine.for_loop(b, 0, 4, body=step)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 40


class TestPostedAccounting:
    def test_posted_read_charges_stats_not_time(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        sram = eq.create_mem("SRAM", 1024, ir.i32, name="sram")
        conn = eq.create_connection("Streaming", 4)
        buf = eq.alloc(sram, [16], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg, conn_arg):
            EQueueBuilder(b).read(buf_arg, conn=conn_arg, posted=True)

        done, = eq.launch(start, kernel, args=[buf, conn], body=body)
        eq.await_(done)
        result = simulate(module)
        assert result.cycles == 0  # no stall
        report = next(iter(result.summary.connections.values()))
        assert report.bytes_read == 64  # statistics still collected
        assert report.busy_read_cycles == 16  # 64 bytes at 4 B/cyc
        memory = result.summary.memory_named("sram")
        assert memory.bytes_read == 64


class TestWindowMemcpy:
    def test_window_connection_serializes_two_dmas(self):
        module, builder, eq = make_program()
        sram = eq.create_mem("Register", 1024, ir.i32)
        conn = eq.create_connection("Window", 4)
        a = eq.alloc(sram, [16], ir.i32)
        b_buf = eq.alloc(sram, [16], ir.i32)
        c = eq.alloc(sram, [16], ir.i32)
        d = eq.alloc(sram, [16], ir.i32)
        dma0 = eq.create_dma()
        dma1 = eq.create_dma()
        start = eq.control_start()
        done0 = eq.memcpy(start, a, b_buf, dma0, conn=conn)
        done1 = eq.memcpy(start, c, d, dma1, conn=conn)
        eq.await_(eq.control_and([done0, done1]))
        # Two 64-byte transfers over one locked 4 B/cyc channel: 32 cycles.
        assert simulate(module).cycles == 32

    def test_streaming_parallel_dmas_on_separate_conns(self):
        module, builder, eq = make_program()
        regs = eq.create_mem("Register", 1024, ir.i32)
        conn0 = eq.create_connection("Streaming", 4)
        conn1 = eq.create_connection("Streaming", 4)
        a = eq.alloc(regs, [16], ir.i32)
        b_buf = eq.alloc(regs, [16], ir.i32)
        c = eq.alloc(regs, [16], ir.i32)
        d = eq.alloc(regs, [16], ir.i32)
        dma0 = eq.create_dma()
        dma1 = eq.create_dma()
        start = eq.control_start()
        done0 = eq.memcpy(start, a, b_buf, dma0, conn=conn0)
        done1 = eq.memcpy(start, c, d, dma1, conn=conn1)
        eq.await_(eq.control_and([done0, done1]))
        # Independent links: both 16-cycle transfers overlap.
        assert simulate(module).cycles == 16


pytest  # noqa: B018
