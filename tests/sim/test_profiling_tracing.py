"""Unit tests for the profiling summary and trace recorder."""

import json

import pytest

from repro.sim.profiling import (
    ConnectionReport,
    MemoryReport,
    ProfilingSummary,
)
from repro.sim.tracing import TraceRecord, TraceRecorder


def make_connection(**overrides):
    defaults = dict(
        name="link", kind="Streaming", bandwidth=4,
        bytes_read=400, bytes_written=200,
        busy_read_cycles=100, busy_write_cycles=50,
        peak_bandwidth=4.0, total_cycles=200,
    )
    defaults.update(overrides)
    return ConnectionReport(**defaults)


class TestConnectionReport:
    def test_average_bandwidths(self):
        report = make_connection()
        assert report.avg_read_bandwidth == 2.0
        assert report.avg_write_bandwidth == 1.0

    def test_max_bandwidth_portion(self):
        report = make_connection()
        assert report.max_bandwidth_portion_read == 0.5
        assert report.max_bandwidth_portion_write == 0.25

    def test_unconstrained_connection_has_no_portion(self):
        report = make_connection(bandwidth=0)
        assert report.max_bandwidth_portion_read == 0.0

    def test_zero_cycles_is_safe(self):
        report = make_connection(total_cycles=0)
        assert report.avg_read_bandwidth == 0.0
        assert report.max_bandwidth_portion_write == 0.0

    def test_portion_clamped_to_one(self):
        report = make_connection(busy_read_cycles=999)
        assert report.max_bandwidth_portion_read == 1.0


class TestMemoryReport:
    def test_bandwidths(self):
        report = MemoryReport(
            name="sram", kind="SRAM", bytes_read=1000, bytes_written=500,
            reads=10, writes=5, total_cycles=100,
        )
        assert report.avg_read_bandwidth == 10.0
        assert report.avg_write_bandwidth == 5.0


def make_summary():
    return ProfilingSummary(
        execution_time_s=0.5,
        cycles=100,
        connections={"c": make_connection(total_cycles=100)},
        memories={
            "accel.sram": MemoryReport(
                "accel.sram", "SRAM", 400, 100, 4, 1, 100
            ),
            "accel.regs": MemoryReport(
                "accel.regs", "Register", 200, 80, 2, 1, 100
            ),
        },
        scheduler_events=42,
        launches_executed=7,
    )


class TestSummary:
    def _summary(self):
        return make_summary()

    def test_bandwidth_by_kind(self):
        summary = self._summary()
        assert summary.bandwidth_by_memory_kind("SRAM") == 4.0
        assert summary.bandwidth_by_memory_kind("SRAM", write=True) == 1.0
        assert summary.bandwidth_by_memory_kind("Register") == 2.0
        assert summary.bandwidth_by_memory_kind("DRAM") == 0.0

    def test_memory_named_suffix_match(self):
        summary = self._summary()
        assert summary.memory_named("sram").kind == "SRAM"
        assert summary.memory_named("accel.regs").kind == "Register"
        assert summary.memory_named("ghost") is None

    def test_format_contains_all_sections(self):
        text = self._summary().format()
        assert "simulator execution time" in text
        assert "100 cycles" in text
        assert "connections" in text
        assert "memories" in text
        assert "accel.sram" in text
        # Bandwidth columns present with numbers.
        assert "4.000" in text

    def test_format_without_connections(self):
        summary = ProfilingSummary(execution_time_s=0.0, cycles=10)
        text = summary.format()
        assert "connections" not in text


class TestSummarySerialization:
    """to_dict/from_dict: the one machine-readable stats format shared
    by ``equeue-sim --stats-json``, the service store, and ``equeue-serve``."""

    def _summary(self):
        return make_summary()

    def test_round_trip_equality(self):
        summary = self._summary()
        assert ProfilingSummary.from_dict(summary.to_dict()) == summary

    def test_round_trip_through_json(self):
        summary = self._summary()
        record = json.loads(json.dumps(summary.to_dict()))
        assert ProfilingSummary.from_dict(record) == summary
        # And serializing the reconstruction is byte-stable.
        assert json.dumps(record, sort_keys=True) == json.dumps(
            ProfilingSummary.from_dict(record).to_dict(), sort_keys=True
        )

    def test_dict_is_plain_and_complete(self):
        record = self._summary().to_dict()
        assert record["cycles"] == 100
        assert record["scheduler_events"] == 42
        assert record["connections"]["c"]["bandwidth"] == 4
        assert record["memories"]["accel.sram"]["bytes_read"] == 400
        # Every report value is a JSON-native scalar.
        for report in (
            *record["connections"].values(), *record["memories"].values()
        ):
            assert all(
                isinstance(value, (int, float, str)) for value in report.values()
            )

    def test_from_dict_tolerates_unknown_and_missing_fields(self):
        record = self._summary().to_dict()
        record["future_counter"] = 123  # newer writer
        record["connections"]["c"]["future_field"] = 1
        del record["plans_compiled"]  # older writer
        loaded = ProfilingSummary.from_dict(record)
        assert loaded.cycles == 100
        assert loaded.plans_compiled == 0

    def test_engine_summary_round_trips(self):
        """A real engine-produced summary (not hand-built) survives the
        round trip bit-identically."""
        from repro.scenarios import simulate_scenario

        result, _ = simulate_scenario("gemm")
        summary = result.summary
        clone = ProfilingSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert clone == summary


class TestTraceRecorder:
    def test_disabled_recorder_drops_records(self):
        recorder = TraceRecorder(enabled=False)
        recorder.record("x", "op", "P", "t", 0, 5)
        assert len(recorder) == 0

    def test_record_and_slices(self):
        recorder = TraceRecorder()
        recorder.record("a", "op", "Processor", "pe0", 0, 2)
        recorder.record("b", "op", "Processor", "pe1", 1, 3)
        recorder.record("c", "op", "Processor", "pe0", 5, 1)
        assert len(recorder) == 3
        assert [r.name for r in recorder.slices_for("pe0")] == ["a", "c"]

    def test_events_sorted_and_balanced(self):
        recorder = TraceRecorder()
        recorder.record("late", "op", "P", "t", 10, 2)
        recorder.record("early", "op", "P", "t", 0, 2)
        events = recorder.to_events()
        assert events[0]["name"] == "early"
        assert [e["ph"] for e in events] == ["B", "E", "B", "E"]
        assert events[1]["ts"] == 2
        assert events[2]["ts"] == 10

    def test_to_json_writes_file(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record("op", "operation", "Processor", "pe", 3, 4)
        path = tmp_path / "trace.json"
        text = recorder.to_json(str(path))
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(text)
        begin = loaded[0]
        assert begin == {
            "name": "op", "cat": "operation", "ph": "B", "ts": 3,
            "pid": "Processor", "tid": "pe",
        }

    def test_record_dataclass_events(self):
        record = TraceRecord("n", "c", "p", "t", 1, 2)
        begin, end = record.to_events()
        assert begin["ph"] == "B" and end["ph"] == "E"
        assert end["ts"] - begin["ts"] == 2


pytest  # noqa: B018
