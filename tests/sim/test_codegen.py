"""Source-codegen differential tests and the ExecutionMode API contract.

``EngineOptions.mode`` selects one of three execution paths — the
reference interpreter, block-plan replay, or per-plan Python source
codegen (:mod:`repro.sim.codegen`).  These tests pin down:

* the one canonical normalization point (:func:`resolve_execution_mode`)
  and the deprecated ``compile_plans`` alias's behavior,
* bit-identity of all three modes on loop/branch/dynamic-index programs,
  including a hypothesis property over randomly generated small modules,
* the codegen counters, the ``__codegen_source__`` escape hatch, and the
  plan cache's mode keying (plan and codegen artifacts never mix).
"""

from __future__ import annotations

import itertools
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.dialects import affine, arith, scf
from repro.dialects.equeue import EQueueBuilder
from repro.sim import (
    Engine,
    EngineOptions,
    ExecutionMode,
    PlanCache,
    resolve_execution_mode,
    simulate,
)

MODES = ("interpret", "plan", "codegen")


# ---------------------------------------------------------------------------
# ExecutionMode resolution: the single normalization point
# ---------------------------------------------------------------------------


class TestExecutionMode:
    def test_resolution_matrix(self):
        assert resolve_execution_mode(None, True) is ExecutionMode.PLAN
        assert resolve_execution_mode(None, False) is ExecutionMode.INTERPRET
        for spelling in MODES:
            assert resolve_execution_mode(spelling) is ExecutionMode(spelling)
            assert (
                resolve_execution_mode(ExecutionMode(spelling))
                is ExecutionMode(spelling)
            )

    def test_str_enum_compares_to_plain_spelling(self):
        assert ExecutionMode.CODEGEN == "codegen"
        assert ExecutionMode("plan") is ExecutionMode.PLAN

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="valid modes"):
            resolve_execution_mode("turbo")

    def test_alias_conflict_rejected(self):
        for spelling in ("plan", "codegen"):
            with pytest.raises(ValueError, match="compile_plans"):
                resolve_execution_mode(spelling, compile_plans=False)
        # interpret agrees with the alias: no conflict.
        assert (
            resolve_execution_mode("interpret", compile_plans=False)
            is ExecutionMode.INTERPRET
        )

    def test_options_default_is_plan(self):
        options = EngineOptions()
        assert options.mode is ExecutionMode.PLAN
        assert options.compile_plans is True

    def test_options_codegen_keeps_alias_observable(self):
        options = EngineOptions(mode="codegen")
        assert options.mode is ExecutionMode.CODEGEN
        # Sweep/batch plumbing still reads the alias: a plan cache
        # applies to plan AND codegen runs.
        assert options.compile_plans is True

    def test_options_alias_warns_and_resolves(self):
        with pytest.warns(DeprecationWarning, match="compile_plans"):
            options = EngineOptions(compile_plans=False)
        assert options.mode is ExecutionMode.INTERPRET

    def test_options_explicit_mode_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (
                EngineOptions(mode="interpret").mode
                is ExecutionMode.INTERPRET
            )
            assert EngineOptions(mode="plan").compile_plans is True

    def test_options_conflict_raises(self):
        with pytest.raises(ValueError, match="conflicts"):
            EngineOptions(mode="codegen", compile_plans=False)


# ---------------------------------------------------------------------------
# Three-way differential
# ---------------------------------------------------------------------------


def observables(engine, result):
    return {
        "cycles": result.cycles,
        "events": result.summary.scheduler_events,
        "launches": result.summary.launches_executed,
        "buffers": {
            name: buffer.array.tolist()
            for name, buffer in sorted(result.buffers.items())
        },
        "processors": [
            (p.name, p.busy_cycles, p.executed_events)
            for p in engine.processors
        ],
        "memories": [
            (m.name, m.bytes_read, m.bytes_written, m.reads, m.writes)
            for m in engine.memories
        ],
    }


def run_all_modes(build, **option_overrides):
    """Build + simulate a program once per mode and assert every
    observable matches.  ``build()`` must return ``(module, inputs)``
    freshly each call (engines mutate buffer state).  Returns the
    per-mode results keyed by mode string."""
    results = {}
    reference = None
    for mode in MODES:
        module, inputs = build()
        options = EngineOptions(mode=mode, **option_overrides)
        engine = Engine(module, options, inputs)
        result = engine.run()
        assert result.summary.execution_mode == mode
        seen = observables(engine, result)
        if reference is None:
            reference = seen
        else:
            assert seen == reference, f"mode {mode!r} diverged"
        results[mode] = result
    return results


def _branchy_program(n: int = 12):
    """A loop mixing the codegen fast paths: constant-folded arith,
    dynamic-index reads/writes, and an ``scf.if`` clamp."""
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    eq = EQueueBuilder(builder)
    pe = eq.create_proc("MAC", name="pe")
    mem = eq.create_mem("Register", 256, ir.i32, name="mem")
    src = eq.alloc(mem, [n], ir.i32, name="src")
    dst = eq.alloc(mem, [n], ir.i32, name="dst")
    start = eq.control_start()

    def body(b, src_a, dst_a):
        def loop(b2, i):
            eq2 = EQueueBuilder(b2)
            x = eq2.read_element(src_a, [i])
            three = arith.constant(b2, 3, ir.i32)
            scaled = arith.muli(b2, x, three)
            eq2.write_element(scaled, dst_a, [i])
            limit = arith.constant(b2, 20, ir.i32)
            cond = arith.cmpi(b2, "sgt", scaled, limit)

            def clamp(b3):
                eq3 = EQueueBuilder(b3)
                eq3.write_element(limit, dst_a, [i])

            scf.if_op(b2, cond, clamp)

        affine.for_loop(b, 0, n, body=loop)

    done, = eq.launch(
        start, pe, args=[src, dst], body=body, label="branchy"
    )
    eq.await_(done)
    ir.verify(module)
    return module


class TestCodegenDifferential:
    def test_branchy_loop(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)

        def build():
            return _branchy_program(), {"src": data}

        results = run_all_modes(build)
        codegen = results["codegen"]
        assert codegen.summary.blocks_codegenned > 0
        expected = np.minimum(data * 3, 20)
        np.testing.assert_array_equal(codegen.buffer("dst"), expected)

    def test_systolic(self, rng):
        from repro.dialects.linalg import ConvDims
        from repro.generators.systolic import (
            SystolicConfig,
            build_systolic_program,
        )

        dims = ConvDims(n=1, c=2, h=6, w=6, fh=2, fw=2)
        ifmap = rng.integers(-3, 4, (2, 6, 6)).astype(np.int32)
        weights = rng.integers(-3, 4, (1, 2, 2, 2)).astype(np.int32)

        def build():
            program = build_systolic_program(
                SystolicConfig("WS", 3, 3, dims)
            )
            return program.module, program.prepare_inputs(ifmap, weights)

        results = run_all_modes(build)
        assert results["codegen"].summary.blocks_codegenned > 0

    def test_fir_counts_fallbacks(self, rng):
        from repro.generators.fir import FIRConfig, build_fir_program

        cfg = FIRConfig(n_cores=2, bandwidth=4, samples=32)
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)

        def build():
            program = build_fir_program(cfg)
            return program.module, program.prepare_inputs(samples, coeffs)

        results = run_all_modes(build)
        summary = results["codegen"].summary
        # The FIR cascade has both inlineable bodies and suspension-heavy
        # ones: codegen takes the former and cleanly declines the latter.
        assert summary.blocks_codegenned > 0
        assert summary.codegen_fallbacks > 0

    def test_heap_scheduler(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)

        def build():
            return _branchy_program(), {"src": data}

        run_all_modes(build, scheduler="heap")

    def test_detailed_trace_matches(self, rng):
        """Detailed tracing disables the arith/extern metadata fast
        paths; the traced wrappers must still run under codegen and
        emit the interpreter's exact records."""
        data = rng.integers(-40, 40, 12).astype(np.int32)
        records = []
        for mode in MODES:
            options = EngineOptions(trace=True, detailed_trace=True, mode=mode)
            result = Engine(
                _branchy_program(), options, {"src": data}
            ).run()
            records.append(
                [(r.name, r.start, r.duration) for r in result.trace.records]
            )
        assert records[0] == records[1] == records[2]


# ---------------------------------------------------------------------------
# Mechanics: counters, source attribute, cache keying
# ---------------------------------------------------------------------------


class TestCodegenMechanics:
    def test_generated_source_attached(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)
        engine = Engine(
            _branchy_program(), EngineOptions(mode="codegen"), {"src": data}
        )
        engine.run()
        bodies = [
            plan.compiled
            for _, plan in engine._plans.plans.values()
            if plan.compiled is not None
        ]
        assert bodies
        for body in bodies:
            source = body.__codegen_source__
            assert source.startswith("def _plan_body(ex, env")

    def test_interpreter_never_codegens(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)
        engine = Engine(
            _branchy_program(), EngineOptions(mode="interpret"), {"src": data}
        )
        result = engine.run()
        assert engine._plans is None
        assert result.summary.blocks_codegenned == 0
        assert result.summary.plans_compiled == 0

    def test_plan_mode_never_codegens(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)
        engine = Engine(
            _branchy_program(), EngineOptions(mode="plan"), {"src": data}
        )
        result = engine.run()
        assert result.summary.plans_compiled > 0
        assert result.summary.blocks_codegenned == 0
        assert all(
            plan.compiled is None
            for _, plan in engine._plans.plans.values()
        )

    def test_cache_mode_switch_flushes(self, rng):
        """A shared plan cache reattached under a different mode flushes:
        a plan-mode artifact must never serve a codegen run or vice
        versa (mirrors the service store's key separation)."""
        data = rng.integers(-40, 40, 12).astype(np.int32)
        module = _branchy_program()
        cache = PlanCache()
        simulate(module, EngineOptions(mode="plan"), inputs={"src": data},
                 plan_cache=cache)
        assert cache.codegen_blocks == 0
        assert all(
            plan.compiled is None for _, plan in cache.plans.values()
        )
        plan_compiles = cache.compiled
        simulate(module, EngineOptions(mode="codegen"), inputs={"src": data},
                 plan_cache=cache)
        # The flush recompiled every plan, this time with codegen bodies.
        assert cache.compiled == 2 * plan_compiles
        assert cache.codegen_blocks > 0
        assert any(
            plan.compiled is not None for _, plan in cache.plans.values()
        )

    def test_summary_format_reports_codegen(self, rng):
        data = rng.integers(-40, 40, 12).astype(np.int32)
        result = simulate(
            _branchy_program(), EngineOptions(mode="codegen"),
            inputs={"src": data},
        )
        assert "codegen blocks:" in result.summary.format()
        assert result.summary.execution_mode == "codegen"

    def test_summary_roundtrip_keeps_mode(self, rng):
        from repro.sim import ProfilingSummary

        data = rng.integers(-40, 40, 12).astype(np.int32)
        result = simulate(
            _branchy_program(), EngineOptions(mode="codegen"),
            inputs={"src": data},
        )
        record = result.summary.to_dict()
        assert record["execution_mode"] == "codegen"
        loaded = ProfilingSummary.from_dict(record)
        assert loaded == result.summary
        # Records written before modes existed still load.
        record.pop("execution_mode")
        record.pop("blocks_codegenned")
        record.pop("codegen_fallbacks")
        old = ProfilingSummary.from_dict(record)
        assert old.execution_mode == ""


# ---------------------------------------------------------------------------
# Property: random small modules are mode-independent
# ---------------------------------------------------------------------------


_OPS = ("addi", "subi", "muli", "maxsi", "minsi", "xori", "andi", "ori")


def _random_program(n, consts, ops, threshold):
    """A random straight-line arith chain inside a loop, with a
    conditional clamp — every codegen fast path in one small module."""
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    eq = EQueueBuilder(builder)
    pe = eq.create_proc("MAC", name="pe")
    mem = eq.create_mem("Register", 256, ir.i32, name="mem")
    src = eq.alloc(mem, [n], ir.i32, name="src")
    dst = eq.alloc(mem, [n], ir.i32, name="dst")
    start = eq.control_start()

    def body(b, src_a, dst_a):
        def loop(b2, i):
            eq2 = EQueueBuilder(b2)
            x = eq2.read_element(src_a, [i])
            for value, op_name in zip(consts, itertools.cycle(ops)):
                rhs = arith.constant(b2, value, ir.i32)
                x = getattr(arith, op_name)(b2, x, rhs)
            eq2.write_element(x, dst_a, [i])
            limit = arith.constant(b2, threshold, ir.i32)
            cond = arith.cmpi(b2, "slt", x, limit)

            def clamp(b3):
                eq3 = EQueueBuilder(b3)
                eq3.write_element(limit, dst_a, [i])

            scf.if_op(b2, cond, clamp)

        affine.for_loop(b, 0, n, body=loop)

    done, = eq.launch(start, pe, args=[src, dst], body=body, label="rand")
    eq.await_(done)
    ir.verify(module)
    return module


class TestCodegenProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        consts=st.lists(
            st.integers(min_value=-7, max_value=7), min_size=1, max_size=4
        ),
        ops=st.lists(st.sampled_from(_OPS), min_size=1, max_size=4),
        threshold=st.integers(min_value=-5, max_value=5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_modes_agree_on_random_modules(
        self, n, consts, ops, threshold, seed
    ):
        data = (
            np.random.default_rng(seed)
            .integers(-50, 50, n)
            .astype(np.int32)
        )

        def build():
            return _random_program(n, consts, ops, threshold), {"src": data}

        run_all_modes(build)
