"""Engine behaviour tests: timing semantics, events, memory, connections."""

import numpy as np
import pytest

from repro import ir
from repro.dialects import affine, arith, scf
from repro.dialects.equeue import EQueueBuilder
from repro.sim import EngineError, EngineOptions, simulate


def make_program():
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    return module, builder, EQueueBuilder(builder)


class TestBasicTiming:
    def test_empty_launch_takes_zero_cycles(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()
        done, = eq.launch(start, kernel, body=lambda b: None)
        eq.await_(done)
        assert simulate(module).cycles == 0

    def test_mac_costs_one_cycle(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            inner = EQueueBuilder(b)
            data = inner.read(buf_arg)
            inner.op("mac", [data, data, data], [data.type])

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 1

    def test_sequential_ops_accumulate(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            inner = EQueueBuilder(b)
            data = inner.read(buf_arg)
            for _ in range(5):
                data = inner.op("mac", [data, data, data], [data.type])[0]

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 5

    def test_arith_on_data_costs_index_free(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()

        def body(b):
            a = arith.constant(b, 1, ir.i32)
            c = arith.addi(b, a, a)       # 1 cycle (data)
            arith.muli(b, c, c)           # 1 cycle (data)
            i = arith.constant(b, 1, ir.index)
            arith.addi(b, i, i)           # free (index)
            return None

        done, = eq.launch(start, kernel, body=body)
        eq.await_(done)
        assert simulate(module).cycles == 2

    def test_interpreted_loop_cost(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            inner = EQueueBuilder(b)

            def loop(b2, iv):
                data = EQueueBuilder(b2).read(buf_arg)
                EQueueBuilder(b2).op("mac", [data, data, data], [data.type])

            affine.for_loop(b, 0, 10, body=loop)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 10


class TestEventSemantics:
    def test_parallel_launches_overlap(self):
        module, _, eq = make_program()
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        pes = [eq.create_proc("MAC") for _ in range(3)]
        start = eq.control_start()
        dones = []
        for pe in pes:
            def body(b, buf_arg):
                inner = EQueueBuilder(b)
                data = inner.read(buf_arg)
                inner.op("mac", [data, data, data], [data.type])
            dones.append(eq.launch(start, pe, args=[buf], body=body)[0])
        eq.await_(eq.control_and(dones))
        # Three PEs run concurrently: total is 1, not 3.
        assert simulate(module).cycles == 1

    def test_same_processor_serializes(self):
        module, _, eq = make_program()
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        pe = eq.create_proc("MAC")
        start = eq.control_start()
        dones = []
        for _ in range(3):
            def body(b, buf_arg):
                inner = EQueueBuilder(b)
                data = inner.read(buf_arg)
                inner.op("mac", [data, data, data], [data.type])
            dones.append(eq.launch(start, pe, args=[buf], body=body)[0])
        eq.await_(eq.control_and(dones))
        # One processor executes one event at a time.
        assert simulate(module).cycles == 3

    def test_dependency_chains_serialize(self):
        module, _, eq = make_program()
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        pes = [eq.create_proc("MAC") for _ in range(3)]
        start = eq.control_start()
        dep = start
        for pe in pes:
            def body(b, buf_arg):
                inner = EQueueBuilder(b)
                data = inner.read(buf_arg)
                inner.op("mac", [data, data, data], [data.type])
            dep = eq.launch(dep, pe, args=[buf], body=body)[0]
        eq.await_(dep)
        # Chained deps: 3 sequential cycles despite 3 processors.
        assert simulate(module).cycles == 3

    def test_control_or_takes_fastest(self):
        module, _, eq = make_program()
        mem = eq.create_mem("Register", 32, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        fast, slow, waiter = (eq.create_proc("MAC") for _ in range(3))
        start = eq.control_start()

        def cost(n):
            def body(b, buf_arg):
                inner = EQueueBuilder(b)
                data = inner.read(buf_arg)
                for _ in range(n):
                    data = inner.op("mac", [data, data, data], [data.type])[0]
            return body

        fast_done, = eq.launch(start, fast, args=[buf], body=cost(2))
        slow_done, = eq.launch(start, slow, args=[buf], body=cost(9))
        either = eq.control_or([fast_done, slow_done])
        gated, = eq.launch(either, waiter, args=[buf], body=cost(1))
        eq.await_(gated)
        # Waiter starts at 2 (fast), runs 1 cycle; slow still finishes at 9.
        assert simulate(module).cycles == 9

    def test_launch_return_values_via_future(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()

        def body(b):
            value = arith.constant(b, 41, ir.i32)
            one = arith.constant(b, 1, ir.i32)
            return [arith.addi(b, value, one)]

        done, out = eq.launch(start, kernel, body=body)
        eq.await_(done)
        result = simulate(module)
        assert result.value_of(out) == 42

    def test_use_of_unresolved_future_errors(self):
        module, _, eq = make_program()
        producer = eq.create_proc("ARMr5")
        consumer = eq.create_proc("ARMr5")
        start = eq.control_start()

        def produce(b):
            value = arith.constant(b, 1, ir.i32)
            # Take a few cycles so the consumer (which wrongly does not
            # depend on us) starts first.
            value = arith.addi(b, value, value)
            value = arith.addi(b, value, value)
            return [value]

        done, out = eq.launch(start, producer, body=produce)
        # Consumer does NOT depend on the producer's done event.
        def consume(b, value):
            one = arith.constant(b, 1, ir.i32)
            arith.addi(b, value, one)

        bad, = eq.launch(start, consumer, args=[out], body=consume)
        eq.await_(bad)
        with pytest.raises(EngineError, match="before the launch finished"):
            simulate(module)


class TestMemoryTiming:
    def _sram_program(self, ports, elements):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        mem = eq.create_mem("SRAM", 4096, ir.i32, ports=ports)
        buf = eq.alloc(mem, [elements], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            EQueueBuilder(b).read(buf_arg)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        return module

    def test_sram_whole_read_time(self):
        assert simulate(self._sram_program(1, 16)).cycles == 16
        assert simulate(self._sram_program(4, 16)).cycles == 4

    def test_dram_slower_than_sram(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        dram = eq.create_mem("DRAM", 4096, ir.i32)
        buf = eq.alloc(dram, [4], ir.i32)
        start = eq.control_start()
        done, = eq.launch(
            start, kernel, args=[buf],
            body=lambda b, buf_arg: EQueueBuilder(b).read(buf_arg) and None,
        )
        eq.await_(done)
        assert simulate(module).cycles == 40

    def test_memory_contention_between_processors(self):
        module, _, eq = make_program()
        mem = eq.create_mem("SRAM", 64, ir.i32, ports=1)
        buf = eq.alloc(mem, [8], ir.i32)
        pes = [eq.create_proc("MAC") for _ in range(2)]
        start = eq.control_start()
        dones = [
            eq.launch(
                start, pe, args=[buf],
                body=lambda b, buf_arg: EQueueBuilder(b).read(buf_arg) and None,
            )[0]
            for pe in pes
        ]
        eq.await_(eq.control_and(dones))
        # Two 8-element reads on one port contend: 16 cycles, not 8.
        assert simulate(module).cycles == 16

    def test_memcpy_duration_and_function(self, rng):
        module, _, eq = make_program()
        sram = eq.create_mem("SRAM", 256, ir.i32, ports=1)
        regs = eq.create_mem("Register", 256, ir.i32)
        src = eq.alloc(sram, [32], ir.i32, name="src")
        dst = eq.alloc(regs, [32], ir.i32, name="dst")
        dma = eq.create_dma()
        start = eq.control_start()
        done = eq.memcpy(start, src, dst, dma)
        eq.await_(done)
        data = rng.integers(0, 100, 32).astype(np.int32)
        result = simulate(module, inputs={"src": data})
        assert result.cycles == 32  # SRAM side dominates
        assert np.array_equal(result.buffer("dst"), data)

    def test_strided_memcpy(self, rng):
        module, builder, eq = make_program()
        sram = eq.create_mem("SRAM", 256, ir.i32, ports=1)
        src = eq.alloc(sram, [32], ir.i32, name="src")
        dst = eq.alloc(sram, [8], ir.i32, name="dst")
        dma = eq.create_dma()
        start = eq.control_start()
        off = arith.constant(builder, 16, ir.index)
        zero = arith.constant(builder, 0, ir.index)
        done = eq.memcpy(start, src, dst, dma, offsets=[off, zero], count=8)
        eq.await_(done)
        data = np.arange(32, dtype=np.int32)
        result = simulate(module, inputs={"src": data})
        assert result.cycles == 8 + 8  # read 8 + write 8 on the same SRAM
        assert list(result.buffer("dst")) == list(range(16, 24))

    def test_strict_capacity(self):
        module, _, eq = make_program()
        mem = eq.create_mem("SRAM", 4, ir.i32)
        eq.alloc(mem, [8], ir.i32)
        with pytest.raises(Exception, match="capacity"):
            simulate(module, EngineOptions(strict_capacity=True))


class TestConnections:
    def _conn_program(self, bandwidth, nbytes_elements, kind="Streaming"):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        mem = eq.create_mem("Register", 4096, ir.i32)
        buf = eq.alloc(mem, [nbytes_elements], ir.i32)
        conn = eq.create_connection(kind, bandwidth)
        start = eq.control_start()

        def body(b, buf_arg, conn_arg):
            EQueueBuilder(b).read(buf_arg, conn=conn_arg)

        done, = eq.launch(start, kernel, args=[buf, conn], body=body)
        eq.await_(done)
        return module

    def test_bandwidth_limits_transfer(self):
        # 16 elements x 4 bytes = 64 bytes at 8 B/cyc = 8 cycles.
        assert simulate(self._conn_program(8, 16)).cycles == 8

    def test_infinite_bandwidth_free_but_counted(self):
        result = simulate(self._conn_program(0, 16))
        assert result.cycles == 0
        conn_report = next(iter(result.summary.connections.values()))
        assert conn_report.bytes_read == 64

    def test_window_serializes_read_and_write(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        mem = eq.create_mem("Register", 64, ir.i32)
        buf = eq.alloc(mem, [8], ir.i32)
        conn = eq.create_connection("Window", 4)
        start = eq.control_start()

        def body(b, buf_arg, conn_arg):
            inner = EQueueBuilder(b)
            data = inner.read(buf_arg, conn=conn_arg)
            inner.write(data, buf_arg, conn=conn_arg)

        done, = eq.launch(start, kernel, args=[buf, conn], body=body)
        eq.await_(done)
        # 32 bytes at 4 B/cyc each way over a locked channel: 8 + 8.
        assert simulate(module).cycles == 16

    def test_streaming_bandwidth_portion(self):
        result = simulate(self._conn_program(8, 16))
        report = next(iter(result.summary.connections.values()))
        assert report.max_bandwidth_portion_read == 1.0
        assert report.avg_read_bandwidth == pytest.approx(8.0)


class TestConditionals:
    def test_scf_if_taken_branch_costs(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            one = arith.constant(b, 1, ir.index)
            taken = arith.cmpi(b, "eq", one, one)

            def then(b2):
                inner = EQueueBuilder(b2)
                data = inner.read(buf_arg)
                inner.op("mac", [data, data, data], [data.type])

            scf.if_op(b, taken, then)
            not_taken = arith.cmpi(b, "ne", one, one)
            scf.if_op(b, not_taken, then)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        assert simulate(module).cycles == 1  # only the taken branch

    def test_else_branch(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32, name="flag")
        start = eq.control_start()

        def body(b, buf_arg):
            one = arith.constant(b, 1, ir.index)
            cond = arith.cmpi(b, "ne", one, one)  # false

            def then(b2):
                val = arith.constant(b2, 111, ir.i32)
                EQueueBuilder(b2).write(val, buf_arg)

            def otherwise(b2):
                val = arith.constant(b2, 222, ir.i32)
                EQueueBuilder(b2).write(val, buf_arg)

            scf.if_op(b, cond, then, otherwise)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        result = simulate(module)
        assert result.buffer("flag")[0] == 222


class TestErrorsAndEdges:
    def test_empty_control_and_triggers_immediately(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        d1, = eq.launch(eq.control_and([]), kernel, body=lambda b: None)
        eq.await_(d1)
        assert simulate(module).cycles == 0

    def test_self_queue_deadlock_detected(self):
        # A launch body that awaits a sub-launch on its *own* processor:
        # the sub-launch sits in the queue while the processor is busy
        # executing the awaiting block — a classic user bug the engine
        # must report rather than hang on.
        module, _, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()

        def body(b, kernel_arg):
            inner = EQueueBuilder(b)
            cs = inner.control_start()
            sub, = inner.launch(cs, kernel_arg, body=lambda bb: None)
            inner.await_(sub)

        done, = eq.launch(start, kernel, args=[kernel], body=body)
        eq.await_(done)
        with pytest.raises(EngineError, match="deadlock"):
            simulate(module)

    def test_unknown_buffer_input(self):
        module, _, eq = make_program()
        eq.create_proc("ARMr5")
        with pytest.raises(EngineError, match="does not match any buffer"):
            simulate(module, inputs={"ghost": np.zeros(4)})

    def test_structure_op_inside_launch_rejected(self):
        module, builder, eq = make_program()
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()

        def body(b):
            EQueueBuilder(b).create_proc("MAC")

        done, = eq.launch(start, kernel, body=body)
        eq.await_(done)
        with pytest.raises(EngineError, match="top level"):
            simulate(module)

    def test_max_cycles_stops_early(self):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            inner = EQueueBuilder(b)

            def loop(b2, iv):
                data = EQueueBuilder(b2).read(buf_arg)
                EQueueBuilder(b2).op("mac", [data, data, data], [data.type])

            affine.for_loop(b, 0, 1000, body=loop)

        done, = eq.launch(start, kernel, args=[buf], body=body)
        eq.await_(done)
        result = simulate(module, EngineOptions(max_cycles=10))
        assert result.truncated
        assert result.cycles == 10


class TestTraceOutput:
    def test_trace_records_and_json(self, tmp_path):
        module, _, eq = make_program()
        kernel = eq.create_proc("MAC", name="pe")
        mem = eq.create_mem("Register", 16, ir.i32)
        buf = eq.alloc(mem, [4], ir.i32)
        start = eq.control_start()

        def body(b, buf_arg):
            inner = EQueueBuilder(b)
            data = inner.read(buf_arg)
            inner.op("mac", [data, data, data], [data.type])

        done, = eq.launch(start, kernel, args=[buf], body=body, label="step")
        eq.await_(done)
        result = simulate(module, EngineOptions(trace=True, detailed_trace=True))
        names = [r.name for r in result.trace.records]
        assert "step" in names
        assert "mac" in names

        import json

        path = tmp_path / "trace.json"
        result.trace.to_json(str(path))
        events = json.loads(path.read_text())
        assert events, "trace JSON must not be empty"
        for event in events:
            assert event["ph"] in ("B", "E")
            assert {"name", "cat", "ts", "pid", "tid"} <= set(event)
        # B/E pairs balance per tid.
        begins = sum(1 for e in events if e["ph"] == "B")
        ends = sum(1 for e in events if e["ph"] == "E")
        assert begins == ends
