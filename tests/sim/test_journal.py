"""The sweep checkpoint journal: format, torn tails, resume semantics."""

from __future__ import annotations

import json

import pytest

from repro.sim.journal import (
    JOURNAL_KIND,
    JournalError,
    SweepJournal,
    journal_line,
    load_journal,
    parse_journal_line,
)

HEADER = {
    "kind": JOURNAL_KIND,
    "request": {"grid": {"scenario": "gemm"}, "seed": 0},
    "total": 3,
    "code": "test",
}


def _point(index: int) -> dict:
    return {"cycles": 100 + index, "config": {"k": index}}


class TestLineFormat:
    def test_roundtrip(self):
        record = {"kind": "point", "index": 2, "point": _point(2)}
        line = journal_line(record)
        assert "\n" not in line  # caller appends the newline
        assert parse_journal_line(line) == record
        assert parse_journal_line(line + "\n") == record

    def test_trailer_detects_corruption(self):
        line = journal_line({"kind": "point", "index": 0, "point": {}})
        flipped = line.replace("point", "poInt", 1)
        assert parse_journal_line(flipped) is None

    def test_torn_line_is_none(self):
        line = journal_line({"kind": "point", "index": 0, "point": {}})
        assert parse_journal_line(line[: len(line) // 2]) is None
        assert parse_journal_line("") is None

    def test_line_is_canonical_json_plus_trailer(self):
        line = journal_line({"b": 2, "a": 1})
        payload = line.rsplit(" #sha256:", 1)[0]
        assert json.loads(payload) == {"a": 1, "b": 2}


class TestJournalFile:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.append_point(0, _point(0))
            journal.append_point(2, _point(2))
        header, points, _, dropped = load_journal(path)
        assert header == HEADER
        assert dropped == 0
        assert set(points) == {0, 2}
        assert points[2] == _point(2)

    def test_resume_returns_completed_points(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.append_point(1, _point(1))
        with SweepJournal(path) as journal:
            completed = journal.open(HEADER, resume=True)
            assert completed == {1: _point(1)}
            assert journal.points_resumed == 1
            journal.append_point(0, _point(0))
        _, points, _, _ = load_journal(path)
        assert set(points) == {0, 1}

    def test_resume_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.append_point(0, _point(0))
            journal.append_point(1, _point(1))
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # tear the last line mid-record
        with SweepJournal(path) as journal:
            completed = journal.open(HEADER, resume=True)
            assert completed == {0: _point(0)}
            journal.append_point(1, _point(1))
        # The torn bytes were truncated: the file is valid end to end.
        _, points, _, dropped = load_journal(path)
        assert dropped == 0
        assert set(points) == {0, 1}

    def test_corrupt_middle_line_keeps_valid_prefix(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.append_point(0, _point(0))
            journal.append_point(1, _point(1))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]
        path.write_bytes(b"".join(lines))
        _, points, _, dropped = load_journal(path)
        assert points == {}  # point 1 is *after* the corruption: dropped
        assert dropped == 2

    def test_resume_rejects_mismatched_header(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
        other = dict(HEADER, total=4)
        with pytest.raises(JournalError):
            SweepJournal(path).open(other, resume=True)

    def test_resume_without_file_starts_fresh(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            assert journal.open(HEADER, resume=True) == {}
            journal.append_point(0, _point(0))
        _, points, _, _ = load_journal(path)
        assert set(points) == {0}

    def test_open_without_resume_truncates(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.append_point(0, _point(0))
        with SweepJournal(path) as journal:
            assert journal.open(HEADER) == {}
        _, points, _, _ = load_journal(path)
        assert points == {}

    def test_unknown_record_kinds_tolerated(self, tmp_path):
        path = tmp_path / "sweep.journal"
        with SweepJournal(path) as journal:
            journal.open(HEADER)
            journal.mark("interrupted", completed=1)
            journal.append_point(0, _point(0))
        _, points, _, dropped = load_journal(path)
        assert set(points) == {0}
        assert dropped == 0

    def test_missing_header_is_error(self, tmp_path):
        path = tmp_path / "sweep.journal"
        path.write_text(
            journal_line({"kind": "point", "index": 0, "point": {}}) + "\n"
        )
        with pytest.raises(JournalError):
            load_journal(path)
