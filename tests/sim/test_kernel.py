"""Tests for the discrete-event simulation kernel.

The scheduler-shaped tests are parameterized over both backends — the
tiered event wheel (:class:`Simulator`) and the binary-heap reference
(:class:`HeapSimulator`) — so the two cannot drift apart; the
``kind`` fixture below provides the backend name.
"""

import gc
import weakref

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import (
    WHEEL_SIZE,
    AllOf,
    AnyOf,
    HeapSimulator,
    ScheduleQueue,
    SimulationError,
    Simulator,
    all_of,
    any_of,
    make_simulator,
)


@pytest.fixture(params=["wheel", "heap"])
def kind(request):
    return request.param


class TestScheduling:
    def test_time_advances_in_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append(("a", sim.now)))
        sim.schedule(2, lambda: log.append(("b", sim.now)))
        sim.schedule(9, lambda: log.append(("c", sim.now)))
        sim.run()
        assert log == [("b", 2), ("a", 5), ("c", 9)]

    def test_fifo_within_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule(3, lambda: log.append("first"))
        sim.schedule(3, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(100, lambda: log.append(100))
        sim.run(until=10)
        assert log == [1]
        assert sim.now == 10

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(5, lambda: sim.schedule_at(2, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_processed_event_count(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.processed_events == 7


class TestEvents:
    def test_trigger_fires_callbacks(self):
        sim = Simulator()
        event = sim.event("e")
        seen = []
        event.on_trigger(lambda e: seen.append(e.value))
        event.trigger(42)
        assert seen == [42]
        assert event.time == 0

    def test_callback_after_trigger_fires_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("x")
        seen = []
        event.on_trigger(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        event = sim.event("dup")
        event.trigger()
        with pytest.raises(SimulationError, match="twice"):
            event.trigger()

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        joined = all_of(sim, events)
        events[0].trigger(1)
        events[1].trigger(2)
        assert not joined.triggered
        events[2].trigger(3)
        assert joined.triggered
        assert joined.value == [1, 2, 3]

    def test_all_of_empty_is_immediate(self):
        sim = Simulator()
        assert all_of(sim, []).triggered

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        either = any_of(sim, events)
        events[1].trigger("winner")
        assert either.triggered
        assert either.value == "winner"
        events[0].trigger("late")  # must not double-trigger
        assert either.value == "winner"


class TestProcesses:
    def test_delays_accumulate(self):
        sim = Simulator()
        trace = []

        def worker():
            yield 3
            trace.append(sim.now)
            yield 4
            trace.append(sim.now)
            return "done"

        process = sim.process(worker())
        sim.run()
        assert trace == [3, 7]
        assert process.done.triggered
        assert process.done.value == "done"

    def test_wait_on_event(self):
        sim = Simulator()
        gate = sim.event("gate")
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(10, lambda: gate.trigger("go"))
        sim.run()
        assert log == [(10, "go")]

    def test_wait_on_process(self):
        sim = Simulator()

        def child():
            yield 5
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.done.value == 100

    def test_all_of_request(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        log = []

        def waiter():
            values = yield AllOf([a, b])
            log.append((sim.now, values))

        sim.process(waiter())
        sim.schedule(2, lambda: a.trigger("A"))
        sim.schedule(7, lambda: b.trigger("B"))
        sim.run()
        assert log == [(7, ["A", "B"])]

    def test_any_of_request(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        log = []

        def waiter():
            value = yield AnyOf([a, b])
            log.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(4, lambda: b.trigger("B"))
        sim.schedule(9, lambda: a.trigger("A"))
        sim.run()
        assert log == [(4, "B")]

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def worker():
            yield -1

        sim.process(worker())
        with pytest.raises(SimulationError, match="negative"):
            sim.run()

    def test_bad_request_rejected(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        sim.process(worker())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()


class TestScheduleQueue:
    def test_single_server_serializes(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (4, 8)
        assert queue.busy_cycles == 8
        assert queue.last_end == 8

    def test_multi_server_parallelism(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=2)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (4, 8)

    def test_book_respects_at(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(2, at=10) == (10, 12)

    def test_zero_duration(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(0) == (0, 0)

    def test_invalid_args(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ScheduleQueue(sim, servers=0)
        queue = ScheduleQueue(sim, servers=1)
        with pytest.raises(SimulationError):
            queue.book(-1)


class TestSchedulerBackends:
    """Behavior locked across both scheduler implementations."""

    def test_make_simulator(self):
        assert make_simulator("wheel").kind == "wheel"
        assert make_simulator("heap").kind == "heap"
        assert isinstance(make_simulator("wheel"), Simulator)
        assert isinstance(make_simulator("heap"), HeapSimulator)
        with pytest.raises(SimulationError, match="unknown scheduler"):
            make_simulator("fancy")

    def test_time_order_and_fifo(self, kind):
        sim = make_simulator(kind)
        log = []
        sim.schedule(5, lambda: log.append("a"))
        sim.schedule(2, lambda: log.append("b"))
        sim.schedule(5, lambda: log.append("c"))
        sim.schedule(0, lambda: log.append("now"))
        sim.run()
        assert log == ["now", "b", "a", "c"]
        assert sim.processed_events == 4

    def test_heap_overflow_delays(self, kind):
        """Delays beyond the wheel horizon stay time-ordered and FIFO."""
        sim = make_simulator(kind)
        log = []
        far = WHEEL_SIZE * 3 + 5
        sim.schedule(far, lambda: log.append(("far", sim.now)))
        sim.schedule(far, lambda: log.append(("far2", sim.now)))
        sim.schedule(3, lambda: log.append(("near", sim.now)))
        sim.schedule_at(far, lambda: log.append(("at", sim.now)))
        sim.run()
        assert log == [
            ("near", 3), ("far", far), ("far2", far), ("at", far)
        ]

    def test_overflow_then_short_delay_same_time_keeps_schedule_order(
        self, kind
    ):
        """An event scheduled long in advance for time T runs before one
        scheduled for T later on (seq order), even though they arrive
        through different tiers of the wheel scheduler."""
        sim = make_simulator(kind)
        target = WHEEL_SIZE + 10
        log = []
        sim.schedule(target, lambda: log.append("early-scheduled"))

        def near_target():
            # now == target - 5: the same absolute time now lands in the
            # wheel (short delay), behind the overflow entry.
            sim.schedule(5, lambda: log.append("late-scheduled"))

        sim.schedule(target - 5, near_target)
        sim.run()
        assert log == ["early-scheduled", "late-scheduled"]

    def test_zero_delay_during_drain_runs_after_queued_work(self, kind):
        """schedule(0, ...) issued *while* time T drains runs after the
        callbacks already queued for T — the heap's seq semantics."""
        sim = make_simulator(kind)
        log = []

        def first():
            log.append("first")
            sim.schedule(0, lambda: log.append("spawned"))

        sim.schedule(3, first)
        sim.schedule(3, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second", "spawned"]

    def test_schedule_in_past_rejected(self, kind):
        sim = make_simulator(kind)
        sim.schedule(5, lambda: sim.schedule_at(2, lambda: None))
        with pytest.raises(SimulationError, match="before current time"):
            sim.run()
        with pytest.raises(SimulationError, match="before current time"):
            sim.schedule(-1, lambda: None)

    def test_run_until_boundary_event_executes(self, kind):
        """Events exactly at ``until`` run; only strictly-later ones wait."""
        sim = make_simulator(kind)
        log = []
        sim.schedule(10, lambda: log.append("at-until"))
        sim.schedule(11, lambda: log.append("beyond"))
        sim.run(until=10)
        assert log == ["at-until"]
        assert sim.now == 10

    def test_run_until_clamps_only_with_pending_work(self, kind):
        """``now`` lands on ``until`` when later work is pending, but
        stays at the last executed event when the queues drain first."""
        sim = make_simulator(kind)
        sim.schedule(2, lambda: None)
        sim.schedule(50, lambda: None)
        assert sim.run(until=10) == 10  # clamped: event at 50 pending
        sim2 = make_simulator(kind)
        sim2.schedule(2, lambda: None)
        assert sim2.run(until=10) == 2  # drained: stays at last event

    def test_run_until_is_resumable(self, kind):
        """A second run picks up pending wheel and overflow work."""
        sim = make_simulator(kind)
        log = []
        sim.schedule(8, lambda: log.append(8))
        sim.schedule(WHEEL_SIZE + 9, lambda: log.append("far"))
        sim.run(until=4)
        assert log == [] and sim.now == 4
        sim.run()
        assert log == [8, "far"]
        assert sim.now == WHEEL_SIZE + 9

    def test_tier_counters_partition_processed_events(self):
        sim = make_simulator("wheel")
        for delay in (0, 1, 2, WHEEL_SIZE, WHEEL_SIZE * 2):
            sim.schedule(delay, lambda: None)
        sim.run()
        assert sim.processed_events == 5
        assert sim.microtask_events == 1
        assert sim.wheel_events == 2
        assert sim.heap_events == 2
        heap_sim = make_simulator("heap")
        for delay in (0, 1, WHEEL_SIZE):
            heap_sim.schedule(delay, lambda: None)
        heap_sim.run()
        assert heap_sim.processed_events == 3
        assert heap_sim.heap_events == 3
        assert heap_sim.microtask_events == 0
        assert heap_sim.wheel_events == 0

    def test_schedule_soon_matches_zero_delay(self, kind):
        sim = make_simulator(kind)
        log = []
        sim.schedule_soon(lambda: log.append(("soon", sim.now)))
        sim.schedule(1, lambda: sim.schedule_soon(
            lambda: log.append(("later", sim.now))
        ))
        sim.run()
        assert log == [("soon", 0), ("later", 1)]

    def test_schedule_bucket_positive_delays(self, kind):
        sim = make_simulator(kind)
        log = []
        sim.schedule_bucket(WHEEL_SIZE + 3, lambda: log.append(sim.now))
        sim.schedule_bucket(2, lambda: log.append(sim.now))
        sim.run()
        assert log == [2, WHEEL_SIZE + 3]

    def test_schedule_bucket_non_positive_delays_match_backends(self, kind):
        """A buggy caller passing delay <= 0 fails (or degrades)
        identically on both backends: 0 runs at the current cycle, a
        negative delay raises — never a silent one-revolution-late slot."""
        sim = make_simulator(kind)
        log = []
        sim.schedule_bucket(0, lambda: log.append(sim.now))
        sim.run()
        assert log == [0]
        with pytest.raises(SimulationError, match="before current time"):
            sim.schedule_bucket(-1, lambda: None)


class TestEventRecycling:
    """The free-list (release/event) contract, including callback state."""

    def test_release_recycles_instance(self, kind):
        sim = make_simulator(kind)
        event = sim.event("first")
        event.trigger(42)
        sim.release(event)
        again = sim.event("second")
        assert again is event  # recycled, not reallocated
        assert again.label == "second"
        assert not again.triggered
        assert again.value is None and again.time is None

    def test_release_drops_stale_callbacks(self, kind):
        """Callbacks registered before release must never fire on the
        recycled event's next trigger."""
        sim = make_simulator(kind)
        event = sim.event()
        stale = []
        event.on_trigger(lambda e: stale.append("stale"))
        sim.release(event)
        fresh = sim.event()
        assert fresh is event
        seen = []
        fresh.on_trigger(lambda e: seen.append(e.value))
        fresh.trigger("new")
        assert seen == ["new"]
        assert stale == []

    def test_recycled_event_can_wait_again(self, kind):
        """A released wake event reused by a process behaves like new."""
        sim = make_simulator(kind)
        log = []

        def worker():
            for expected in ("a", "b"):
                gate = sim.event("gate")
                sim.schedule(5, lambda g=gate, v=expected: g.trigger(v))
                value = yield gate
                log.append((sim.now, value))
                sim.release(gate)

        sim.process(worker())
        sim.run()
        assert log == [(5, "a"), (10, "b")]

    def test_detach_unregistered_is_noop(self, kind):
        sim = make_simulator(kind)
        event = sim.event()
        event.detach(lambda e: None)  # nothing registered: no error
        event.on_trigger(lambda e: None)
        event.detach(lambda e: None)  # different callback: no error


class TestCompositeEdgeCases:
    """AllOf/AnyOf with empty and already-triggered children."""

    def test_all_of_empty_triggers_immediately(self, kind):
        sim = make_simulator(kind)
        done = all_of(sim, [])
        assert done.triggered and done.value == []

    def test_any_of_empty_triggers_immediately(self, kind):
        sim = make_simulator(kind)
        done = any_of(sim, [])
        assert done.triggered and done.value is None

    def test_all_of_already_triggered_children(self, kind):
        sim = make_simulator(kind)
        events = [sim.event() for _ in range(3)]
        for i, event in enumerate(events):
            event.trigger(i)
        done = all_of(sim, events)
        assert done.triggered
        assert done.value == [0, 1, 2]

    def test_all_of_mixed_triggered_and_pending(self, kind):
        sim = make_simulator(kind)
        first, second = sim.event(), sim.event()
        first.trigger("early")
        done = all_of(sim, [first, second])
        assert not done.triggered
        second.trigger("late")
        assert done.value == ["early", "late"]

    def test_any_of_already_triggered_child_wins_immediately(self, kind):
        sim = make_simulator(kind)
        winner, loser = sim.event(), sim.event()
        winner.trigger("won")
        done = any_of(sim, [winner, loser])
        assert done.triggered and done.value == "won"
        # The loser was never attached (registration stops on a win) or
        # was detached; triggering it later must not double-fire.
        loser.trigger("late")
        assert done.value == "won"

    def test_any_of_request_with_triggered_child_resumes(self, kind):
        sim = make_simulator(kind)
        a, b = sim.event(), sim.event()
        a.trigger("ready")
        log = []

        def waiter():
            value = yield AnyOf([a, b])
            log.append((sim.now, value))

        sim.process(waiter())
        sim.run()
        assert log == [(0, "ready")]

    def test_all_of_request_empty_resumes_immediately(self, kind):
        sim = make_simulator(kind)
        log = []

        def waiter():
            values = yield AllOf([])
            log.append((sim.now, values))

        sim.process(waiter())
        sim.run()
        assert log == [(0, [])]


class TestAnyOfLeak:
    """The losers of an any_of must not retain the composite result."""

    def test_losing_events_release_result(self, kind):
        sim = make_simulator(kind)
        winner = sim.event("winner")
        losers = [sim.event(f"loser{i}") for i in range(3)]
        result = any_of(sim, [winner] + losers)
        ref = weakref.ref(result)
        winner.trigger("won")
        assert result.value == "won"
        del result
        gc.collect()
        # The losing events live on (the component holds them), but they
        # no longer reach the any_of result through their callbacks.
        assert ref() is None
        assert all(not loser.triggered for loser in losers)

    def test_pending_any_of_still_reachable(self, kind):
        """Before anything fires, callbacks must of course keep the
        result alive through the child events."""
        sim = make_simulator(kind)
        events = [sim.event() for _ in range(2)]
        ref = weakref.ref(any_of(sim, events))
        gc.collect()
        assert ref() is not None  # held via the children's callbacks
        events[1].trigger("go")
        gc.collect()
        assert ref() is None  # fired and dropped everywhere

    def test_late_loser_trigger_after_win_is_safe(self, kind):
        sim = make_simulator(kind)
        a, b = sim.event(), sim.event()
        result = any_of(sim, [a, b])
        a.trigger(1)
        b.trigger(2)  # must neither raise nor re-fire
        assert result.value == 1


# -- property tests -----------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)), max_size=30))
def test_callbacks_fire_in_nondecreasing_time(jobs):
    sim = Simulator()
    times = []
    for delay, _ in jobs:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 9), min_size=1, max_size=20),
       st.integers(1, 4))
def test_schedule_queue_conservation(durations, servers):
    """Total busy time equals the sum of durations, and no server overlap:
    makespan >= total/servers."""
    sim = Simulator()
    queue = ScheduleQueue(sim, servers=servers)
    ends = [queue.book(d)[1] for d in durations]
    assert queue.busy_cycles == sum(durations)
    assert max(ends) >= sum(durations) / servers


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=10))
def test_process_total_time_is_sum_of_delays(delays):
    sim = Simulator()

    def worker():
        for delay in delays:
            yield delay

    process = sim.process(worker())
    sim.run()
    assert process.done.triggered
    assert sim.now == sum(delays)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.integers(0, WHEEL_SIZE * 2 + 10), min_size=1, max_size=25
    ),
    st.lists(st.integers(0, WHEEL_SIZE + 5), max_size=5),
)
def test_wheel_and_heap_execute_identically(delays, nested):
    """The wheel scheduler's execution order is bit-identical to the
    heap's for arbitrary delay mixes spanning all three tiers (zero-delay
    ring, wheel buckets, overflow heap), including callbacks that
    schedule more work while running."""
    logs = []
    for backend in ("wheel", "heap"):
        sim = make_simulator(backend)
        log = []

        def spawn(job, s=sim, out=log):
            out.append((job, s.now))
            for extra, nested_delay in enumerate(nested):
                s.schedule(
                    nested_delay,
                    lambda j=(job, extra), s=s, out=out: out.append(
                        (j, s.now)
                    ),
                )

        for job, delay in enumerate(delays):
            sim.schedule(delay, lambda j=job: spawn(j))
        sim.run()
        logs.append(log)
        assert sim.processed_events == len(delays) * (1 + len(nested))
    assert logs[0] == logs[1]
