"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    ScheduleQueue,
    SimulationError,
    Simulator,
    all_of,
    any_of,
)


class TestScheduling:
    def test_time_advances_in_order(self):
        sim = Simulator()
        log = []
        sim.schedule(5, lambda: log.append(("a", sim.now)))
        sim.schedule(2, lambda: log.append(("b", sim.now)))
        sim.schedule(9, lambda: log.append(("c", sim.now)))
        sim.run()
        assert log == [("b", 2), ("a", 5), ("c", 9)]

    def test_fifo_within_same_time(self):
        sim = Simulator()
        log = []
        sim.schedule(3, lambda: log.append("first"))
        sim.schedule(3, lambda: log.append("second"))
        sim.run()
        assert log == ["first", "second"]

    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule(1, lambda: log.append(1))
        sim.schedule(100, lambda: log.append(100))
        sim.run(until=10)
        assert log == [1]
        assert sim.now == 10

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(5, lambda: sim.schedule_at(2, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()

    def test_processed_event_count(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.processed_events == 7


class TestEvents:
    def test_trigger_fires_callbacks(self):
        sim = Simulator()
        event = sim.event("e")
        seen = []
        event.on_trigger(lambda e: seen.append(e.value))
        event.trigger(42)
        assert seen == [42]
        assert event.time == 0

    def test_callback_after_trigger_fires_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.trigger("x")
        seen = []
        event.on_trigger(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_double_trigger_raises(self):
        sim = Simulator()
        event = sim.event("dup")
        event.trigger()
        with pytest.raises(SimulationError, match="twice"):
            event.trigger()

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        joined = all_of(sim, events)
        events[0].trigger(1)
        events[1].trigger(2)
        assert not joined.triggered
        events[2].trigger(3)
        assert joined.triggered
        assert joined.value == [1, 2, 3]

    def test_all_of_empty_is_immediate(self):
        sim = Simulator()
        assert all_of(sim, []).triggered

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        either = any_of(sim, events)
        events[1].trigger("winner")
        assert either.triggered
        assert either.value == "winner"
        events[0].trigger("late")  # must not double-trigger
        assert either.value == "winner"


class TestProcesses:
    def test_delays_accumulate(self):
        sim = Simulator()
        trace = []

        def worker():
            yield 3
            trace.append(sim.now)
            yield 4
            trace.append(sim.now)
            return "done"

        process = sim.process(worker())
        sim.run()
        assert trace == [3, 7]
        assert process.done.triggered
        assert process.done.value == "done"

    def test_wait_on_event(self):
        sim = Simulator()
        gate = sim.event("gate")
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(10, lambda: gate.trigger("go"))
        sim.run()
        assert log == [(10, "go")]

    def test_wait_on_process(self):
        sim = Simulator()

        def child():
            yield 5
            return 99

        def parent():
            result = yield sim.process(child())
            return result + 1

        parent_process = sim.process(parent())
        sim.run()
        assert parent_process.done.value == 100

    def test_all_of_request(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        log = []

        def waiter():
            values = yield AllOf([a, b])
            log.append((sim.now, values))

        sim.process(waiter())
        sim.schedule(2, lambda: a.trigger("A"))
        sim.schedule(7, lambda: b.trigger("B"))
        sim.run()
        assert log == [(7, ["A", "B"])]

    def test_any_of_request(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        log = []

        def waiter():
            value = yield AnyOf([a, b])
            log.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(4, lambda: b.trigger("B"))
        sim.schedule(9, lambda: a.trigger("A"))
        sim.run()
        assert log == [(4, "B")]

    def test_negative_delay_rejected(self):
        sim = Simulator()

        def worker():
            yield -1

        sim.process(worker())
        with pytest.raises(SimulationError, match="negative"):
            sim.run()

    def test_bad_request_rejected(self):
        sim = Simulator()

        def worker():
            yield "nonsense"

        sim.process(worker())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()


class TestScheduleQueue:
    def test_single_server_serializes(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (4, 8)
        assert queue.busy_cycles == 8
        assert queue.last_end == 8

    def test_multi_server_parallelism(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=2)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (0, 4)
        assert queue.book(4) == (4, 8)

    def test_book_respects_at(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(2, at=10) == (10, 12)

    def test_zero_duration(self):
        sim = Simulator()
        queue = ScheduleQueue(sim, servers=1)
        assert queue.book(0) == (0, 0)

    def test_invalid_args(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            ScheduleQueue(sim, servers=0)
        queue = ScheduleQueue(sim, servers=1)
        with pytest.raises(SimulationError):
            queue.book(-1)


# -- property tests -----------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 10)), max_size=30))
def test_callbacks_fire_in_nondecreasing_time(jobs):
    sim = Simulator()
    times = []
    for delay, _ in jobs:
        sim.schedule(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 9), min_size=1, max_size=20),
       st.integers(1, 4))
def test_schedule_queue_conservation(durations, servers):
    """Total busy time equals the sum of durations, and no server overlap:
    makespan >= total/servers."""
    sim = Simulator()
    queue = ScheduleQueue(sim, servers=servers)
    ends = [queue.book(d)[1] for d in durations]
    assert queue.busy_cycles == sum(durations)
    assert max(ends) >= sum(durations) / servers


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=10))
def test_process_total_time_is_sum_of_delays(delays):
    sim = Simulator()

    def worker():
        for delay in delays:
            yield delay

    process = sim.process(worker())
    sim.run()
    assert process.done.triggered
    assert sim.now == sum(delays)
