"""Differential tests: the compiled engine is bit-identical to the interpreter.

``EngineOptions.mode`` switches between the reference interpreter
(``"interpret"``), the block-plan compiler of :mod:`repro.sim.plan`
(``"plan"``, the default), and per-plan source codegen (``"codegen"``).
These tests run representative workloads — the
systolic generator under all three dataflows, the FIR cascade, and the
lowering-pipeline stages — through the engines and assert that every
observable is identical:

* simulated cycles and the scheduler-event count,
* final buffer contents,
* per-processor busy time,
* per-memory traffic statistics and schedule-queue busy time,
* per-connection traffic and busy time.

A second group exercises the vectorized ``affine.for`` fast path directly:
batched map loops, integer reductions, and the runtime guards (timed
memories, buffer aliasing) that must fall back to scalar replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ir
from repro.dialects import affine, arith
from repro.dialects.equeue import EQueueBuilder
from repro.dialects.linalg import ConvDims
from repro.sim import Engine, EngineOptions


def run_both(build, **option_overrides):
    """Build + simulate a program twice (compiled, interpreted) and assert
    every observable matches.  ``build()`` must return ``(module, inputs)``
    freshly each call (engines mutate buffer state)."""
    engines = []
    results = []
    for mode in ("plan", "interpret"):
        module, inputs = build()
        options = EngineOptions(mode=mode, **option_overrides)
        engine = Engine(module, options, inputs)
        results.append(engine.run())
        engines.append(engine)
    compiled, interpreted = results
    assert compiled.cycles == interpreted.cycles
    assert (
        compiled.summary.scheduler_events
        == interpreted.summary.scheduler_events
    )
    assert compiled.buffers.keys() == interpreted.buffers.keys()
    for name in compiled.buffers:
        np.testing.assert_array_equal(
            compiled.buffers[name].array,
            interpreted.buffers[name].array,
            err_msg=f"buffer {name!r} diverged",
        )
    ec, ei = engines
    for pc, pi in zip(ec.processors, ei.processors):
        assert pc.name == pi.name
        assert pc.busy_cycles == pi.busy_cycles, pc.name
        assert pc.executed_events == pi.executed_events, pc.name
    for mc, mi in zip(ec.memories, ei.memories):
        assert mc.name == mi.name
        assert (mc.bytes_read, mc.bytes_written, mc.reads, mc.writes) == (
            mi.bytes_read, mi.bytes_written, mi.reads, mi.writes
        ), mc.name
        if mc.queue is not None and mi.queue is not None:
            assert mc.queue.total_busy_cycles == mi.queue.total_busy_cycles, (
                mc.name
            )
    for cc, ci in zip(ec.connections, ei.connections):
        assert cc.name == ci.name
        assert (cc.bytes_read, cc.bytes_written, cc.transfers) == (
            ci.bytes_read, ci.bytes_written, ci.transfers
        ), cc.name
        assert (
            cc.read_queue.total_busy_cycles
            == ci.read_queue.total_busy_cycles
        )
        assert (
            cc.write_queue.total_busy_cycles
            == ci.write_queue.total_busy_cycles
        )
    return compiled, interpreted


# ---------------------------------------------------------------------------
# Generator workloads
# ---------------------------------------------------------------------------


class TestGeneratorsDifferential:
    @pytest.mark.parametrize("dataflow", ["WS", "IS", "OS"])
    def test_systolic(self, dataflow, rng):
        from repro.generators.systolic import (
            SystolicConfig,
            build_systolic_program,
        )

        dims = ConvDims(n=2, c=2, h=6, w=6, fh=2, fw=2)
        ifmap = rng.integers(-3, 4, (2, 6, 6)).astype(np.int32)
        weights = rng.integers(-3, 4, (2, 2, 2, 2)).astype(np.int32)

        def build():
            program = build_systolic_program(
                SystolicConfig(dataflow, 3, 3, dims)
            )
            return program.module, program.prepare_inputs(ifmap, weights)

        compiled, _ = run_both(build)
        assert compiled.summary.plans_compiled > 0
        assert compiled.summary.plan_cache_hits > 0

    @pytest.mark.parametrize("n_cores,bandwidth", [(1, None), (4, 4)])
    def test_fir(self, n_cores, bandwidth, rng):
        from repro.generators.fir import (
            FIRConfig,
            build_fir_program,
            fir_reference,
        )

        cfg = FIRConfig(n_cores=n_cores, bandwidth=bandwidth, samples=64)
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)

        def build():
            program = build_fir_program(cfg)
            return program.module, program.prepare_inputs(samples, coeffs)

        compiled, _ = run_both(build)
        # The simulation still computes the right FIR answer.
        program = build_fir_program(cfg)
        reference = fir_reference(samples, coeffs, cfg.samples)
        np.testing.assert_array_equal(
            program.extract_output(compiled), reference
        )

    @pytest.mark.parametrize("stage", ["linalg", "affine", "reassign"])
    def test_pipeline_stage(self, stage):
        from repro.generators.pipeline import LoweringPipeline

        pipeline = LoweringPipeline(
            dims=ConvDims(n=2, c=2, h=6, w=6, fh=3, fw=3)
        )
        ifmap, weight = pipeline.make_data()

        def build():
            module = pipeline.build_stage(stage)
            return module, {"ifmap": ifmap, "weight": weight}

        run_both(build)


# ---------------------------------------------------------------------------
# Vectorized loop fast path
# ---------------------------------------------------------------------------


def _loop_program(memory_kind: str, alias: bool = False):
    """A launch with a loop doing a map (dst[i] = 2*src[i]) and an integer
    reduction (acc[0] += src[i]) over 16 elements."""
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    eq = EQueueBuilder(builder)
    pe = eq.create_proc("MAC", name="pe")
    mem = eq.create_mem(memory_kind, 64, ir.i32, name="mem")
    src = eq.alloc(mem, [16], ir.i32, name="src")
    dst = src if alias else eq.alloc(mem, [16], ir.i32, name="dst")
    acc = eq.alloc(mem, [1], ir.i32, name="acc")
    start = eq.control_start()

    def body(b, src_a, dst_a, acc_a):
        def loop(b2, i):
            eq2 = EQueueBuilder(b2)
            x = eq2.read_element(src_a, [i])
            two = arith.constant(b2, 2, ir.i32)
            doubled = arith.muli(b2, x, two)
            eq2.write_element(doubled, dst_a, [i])
            zero = arith.constant(b2, 0, ir.index)
            running = eq2.read_element(acc_a, [zero])
            total = arith.addi(b2, running, x)
            eq2.write_element(total, acc_a, [zero])

        affine.for_loop(b, 0, 16, body=loop)

    done, = eq.launch(start, pe, args=[src, dst, acc], body=body, label="loop")
    eq.await_(done)
    ir.verify(module)
    return module


class TestVectorizedLoops:
    def test_register_loop_vectorizes(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)

        def build():
            return _loop_program("Register"), {"src": data}

        compiled, _ = run_both(build)
        assert compiled.summary.vector_loops == 1
        assert compiled.summary.vector_iterations == 16
        assert compiled.summary.vector_fallbacks == 0
        np.testing.assert_array_equal(compiled.buffer("dst"), data * 2)
        assert compiled.buffer("acc")[0] == int(data.sum())
        # Two charged data ops (muli, addi) per iteration.
        assert compiled.cycles == 32

    def test_sram_loop_falls_back(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)

        def build():
            return _loop_program("SRAM"), {"src": data}

        compiled, _ = run_both(build)
        # Compiled as a vector loop, but the timed SRAM fails the runtime
        # guard, so every execution replays the scalar plan — and still
        # matches the interpreter exactly.
        assert compiled.summary.vector_loops == 1
        assert compiled.summary.vector_iterations == 0
        assert compiled.summary.vector_fallbacks == 1
        np.testing.assert_array_equal(compiled.buffer("dst"), data * 2)

    def test_aliased_buffers_fall_back(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)

        def build():
            return _loop_program("Register", alias=True), {"src": data}

        compiled, _ = run_both(build)
        # src and dst are the same Buffer at runtime: the aliasing guard
        # must reject the batch and replay scalar iterations.
        assert compiled.summary.vector_fallbacks >= 1
        np.testing.assert_array_equal(compiled.buffer("src"), data * 2)

    def test_blockarg_store_at_invariant_index(self):
        """A loop storing a captured scalar (a BlockArgument) at a
        loop-invariant index is not a reduction; the vectorizer must
        reject it gracefully, not crash on the argument's Block owner."""

        def build():
            module = ir.create_module()
            builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
            eq = EQueueBuilder(builder)
            pe = eq.create_proc("MAC", name="pe")
            mem = eq.create_mem("Register", 64, ir.i32, name="mem")
            buf = eq.alloc(mem, [4], ir.i32, name="buf")
            seven = arith.constant(builder, 7, ir.i32)
            start = eq.control_start()

            def body(b, buf_a, x_a):
                def loop(b2, i):
                    eq2 = EQueueBuilder(b2)
                    zero = arith.constant(b2, 0, ir.index)
                    eq2.write_element(x_a, buf_a, [zero])

                affine.for_loop(b, 0, 4, body=loop)

            done, = eq.launch(
                start, pe, args=[buf, seven], body=body, label="w"
            )
            eq.await_(done)
            ir.verify(module)
            return module, None

        compiled, _ = run_both(build)
        assert compiled.summary.vector_loops == 0
        np.testing.assert_array_equal(
            compiled.buffer("buf"), np.array([7, 0, 0, 0], np.int32)
        )

    def test_interpreter_never_compiles(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)
        module = _loop_program("Register")
        engine = Engine(
            module, EngineOptions(mode="interpret"), {"src": data}
        )
        result = engine.run()
        assert result.summary.plans_compiled == 0
        assert result.summary.plan_cache_hits == 0
        assert engine._plans is None

    def test_vectorize_escape_hatch(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)

        def build():
            return _loop_program("Register"), {"src": data}

        compiled, _ = run_both(build, vectorize_loops=False)
        assert compiled.summary.plans_compiled > 0
        assert compiled.summary.vector_loops == 0
        np.testing.assert_array_equal(compiled.buffer("dst"), data * 2)

    def test_summary_format_reports_plans(self, rng):
        data = rng.integers(-50, 50, 16).astype(np.int32)
        module = _loop_program("Register")
        result = Engine(module, EngineOptions(), {"src": data}).run()
        text = result.summary.format()
        assert "block plans:" in text
        assert "vectorized loops:" in text


class TestTraceDifferential:
    def test_detailed_trace_records(self, rng):
        """With detailed tracing on, compiled plans disable vectorization
        and must emit the same trace records as the interpreter."""
        data = rng.integers(-50, 50, 16).astype(np.int32)
        records = []
        for mode in ("plan", "interpret", "codegen"):
            module = _loop_program("Register")
            options = EngineOptions(
                trace=True, detailed_trace=True, mode=mode
            )
            result = Engine(module, options, {"src": data}).run()
            records.append(
                [
                    (r.name, r.start, r.duration)
                    for r in result.trace.records
                ]
            )
        assert records[0] == records[1] == records[2]
