"""Crash-tolerant pool recovery: kills, poison, deadlines, fallback.

The contract under test: whatever the pool machinery survives —
SIGKILLed children, poisoned items, wedged workers — :meth:`SweepRunner.
map`'s results are bit-identical to the ``jobs=1`` serial loop, every
result is delivered to ``on_result`` exactly once, and the recovery work
is visible on ``runner.resilience``.

Workers misbehave deterministically via *ticket files*: a fault claims
its ticket with ``O_CREAT | O_EXCL`` (atomic across the pool's
processes), so a "kill once" fault kills exactly one worker no matter
how chunks are re-dispatched.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.sim.batch import (
    ChunkDeadlineError,
    SweepInterrupted,
    SweepRunner,
)


def _claim(token: str) -> bool:
    try:
        os.close(os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        return True
    except FileExistsError:
        return False


def _evaluate(payload):  # module-level: picklable for pool workers
    value, action, token = payload
    if action == "kill-once" and _claim(token):
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "kill-in-child" and os.getpid() != int(token):
        # A worker-environment casualty: dies in any pool child, runs
        # fine in the parent — the in-parent isolation endpoint.
        os.kill(os.getpid(), signal.SIGKILL)
    if action == "stall-once" and _claim(token):
        time.sleep(20)
    if action == "stall-always":
        time.sleep(20)
    if action == "raise":
        raise ValueError(f"bad item {value}")
    return value * 3


def _items(count, faults=()):
    """``count`` plain items with ``faults`` overrides at given indices."""
    payloads = [(i, "ok", "") for i in range(count)]
    for index, action, token in faults:
        payloads[index] = (index, action, token)
    return payloads


EXPECTED = [i * 3 for i in range(16)]


class TestCrashRecovery:
    def test_worker_kill_is_bit_identical(self, tmp_path):
        items = _items(16, [(7, "kill-once", str(tmp_path / "kill"))])
        runner = SweepRunner(jobs=2, chunk_size=4)
        assert runner.map(_evaluate, items) == EXPECTED
        assert runner.resilience.pool_rebuilds >= 1
        assert runner.resilience.chunks_retried >= 1
        assert not runner.fell_back

    def test_on_result_delivered_exactly_once(self, tmp_path):
        items = _items(16, [(3, "kill-once", str(tmp_path / "kill"))])
        seen = {}

        def on_result(index, value):
            seen[index] = seen.get(index, 0) + 1
            assert value == index * 3

        runner = SweepRunner(jobs=2, chunk_size=4)
        runner.map(_evaluate, items, on_result=on_result)
        assert seen == {i: 1 for i in range(16)}

    def test_poisoned_item_isolated_in_parent(self):
        items = _items(16, [(5, "kill-in-child", str(os.getpid()))])
        runner = SweepRunner(jobs=2, chunk_size=8)
        assert runner.map(_evaluate, items) == EXPECTED
        assert runner.resilience.chunk_splits >= 1
        assert runner.resilience.poison_isolated >= 1
        assert not runner.fell_back

    def test_worker_exception_propagates_from_pool(self):
        items = _items(8, [(2, "raise", "")])
        runner = SweepRunner(jobs=2, chunk_size=2)
        with pytest.raises(ValueError, match="bad item 2"):
            runner.map(_evaluate, items)

    def test_rebuild_budget_falls_back_serial(self, tmp_path):
        # Budget 0: the first crash exhausts it.  The fallback must keep
        # whatever the pool resolved and recompute only the missing
        # items — and still produce the bit-identical result.
        items = _items(16, [(1, "kill-once", str(tmp_path / "kill"))])
        runner = SweepRunner(jobs=2, chunk_size=4, max_pool_rebuilds=0)
        assert runner.map(_evaluate, items) == EXPECTED
        assert runner.fell_back
        assert runner.resilience.serial_fallbacks == 1
        assert "budget" in runner.resilience.fallback_reason
        assert runner.resilience.items_recovered_serial >= 1

    def test_clean_run_reports_nothing(self):
        runner = SweepRunner(jobs=2, chunk_size=4)
        assert runner.map(_evaluate, _items(16)) == EXPECTED
        assert not runner.resilience.eventful()
        assert not runner.fell_back


class TestChunkDeadline:
    def test_transient_stall_recovers(self, tmp_path):
        items = _items(8, [(4, "stall-once", str(tmp_path / "stall"))])
        runner = SweepRunner(jobs=2, chunk_size=2, chunk_deadline_s=1.0)
        started = time.monotonic()
        assert runner.map(_evaluate, items) == [i * 3 for i in range(8)]
        assert time.monotonic() - started < 15.0  # never waited the 20s out
        assert runner.resilience.deadline_timeouts >= 1
        assert runner.resilience.pool_rebuilds >= 1

    def test_wedged_singleton_fails_cleanly(self):
        items = _items(6, [(2, "stall-always", "")])
        runner = SweepRunner(jobs=2, chunk_size=2, chunk_deadline_s=0.5)
        started = time.monotonic()
        with pytest.raises(ChunkDeadlineError, match="deadline"):
            runner.map(_evaluate, items)
        # Escalation (kill, retry, bisect, give up) stays bounded — the
        # sweep never sleeps out a 20s wedge.
        assert time.monotonic() - started < 15.0


class TestCancel:
    def test_cancel_before_start_serial(self):
        cancel = threading.Event()
        cancel.set()
        runner = SweepRunner(jobs=1)
        with pytest.raises(SweepInterrupted) as info:
            runner.map(_evaluate, _items(4), cancel=cancel)
        assert info.value.completed == 0
        assert info.value.total == 4

    def test_cancel_mid_pool_drains_completions(self):
        cancel = threading.Event()
        delivered = []

        def on_result(index, value):
            delivered.append(index)
            cancel.set()

        runner = SweepRunner(jobs=2, chunk_size=2)
        with pytest.raises(SweepInterrupted) as info:
            runner.map(_evaluate, _items(16), on_result=on_result, cancel=cancel)
        # Everything reported completed was actually delivered.
        assert info.value.completed == len(delivered)
        assert 1 <= len(delivered) < 16
