"""Shared hygiene for the observability tests.

The obs plane is process-global by design (``METRICS``/``TRACER``
module switches, one logging config), so every test runs against a
guaranteed-disabled baseline and restores it afterwards — no test may
leak an enabled registry or tracer into the rest of the suite.
"""

from __future__ import annotations

import pytest

from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans


@pytest.fixture(autouse=True)
def _clean_obs_globals():
    obs_metrics.disable_metrics()
    obs_spans.disable_spans()
    obs_logs.set_request_id(None)
    yield
    obs_metrics.disable_metrics()
    obs_spans.disable_spans()
    obs_logs.set_request_id(None)
    obs_logs.configure_logging()  # back to info / human / stderr
