"""Structured logging: JSONL shape, level filtering, request-id scoping."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.logs import (
    LEVELS,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
    set_request_id,
)


@pytest.fixture
def jsonl():
    """Capture JSONL output; returns (read_records, stream)."""
    stream = io.StringIO()
    configure_logging(level="debug", json_mode=True, stream=stream)

    def records():
        return [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line
        ]

    return records


class TestJsonlShape:
    def test_record_fields(self, jsonl):
        get_logger("service.server").info(
            "http.access", method="POST", path="/jobs", status=200
        )
        (record,) = jsonl()
        assert record["level"] == "info"
        assert record["logger"] == "service.server"
        assert record["event"] == "http.access"
        assert record["method"] == "POST"
        assert record["path"] == "/jobs"
        assert record["status"] == 200
        assert isinstance(record["ts"], float)

    def test_none_fields_dropped(self, jsonl):
        get_logger("test").info("event", present=1, absent=None)
        (record,) = jsonl()
        assert record["present"] == 1
        assert "absent" not in record

    def test_non_serializable_fields_stringified(self, jsonl):
        get_logger("test").info("event", value=complex(1, 2))
        (record,) = jsonl()
        assert record["value"] == str(complex(1, 2))

    def test_one_line_per_record(self, jsonl):
        log = get_logger("test")
        for index in range(3):
            log.info("event", index=index)
        assert [r["index"] for r in jsonl()] == [0, 1, 2]


class TestLevels:
    def test_below_threshold_suppressed(self):
        stream = io.StringIO()
        configure_logging(level="warning", json_mode=True, stream=stream)
        log = get_logger("test")
        log.debug("quiet")
        log.info("quiet")
        log.warning("loud")
        log.error("loud")
        events = [
            json.loads(line)["level"]
            for line in stream.getvalue().splitlines()
        ]
        assert events == ["warning", "error"]

    def test_level_order_is_documented_order(self):
        assert LEVELS == ("debug", "info", "warning", "error")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="verbose")


class TestHumanFormat:
    def test_key_value_line(self):
        stream = io.StringIO()
        configure_logging(level="info", json_mode=False, stream=stream)
        get_logger("service.server").info("server.recovery", requeued=2)
        line = stream.getvalue().strip()
        assert line == "[service.server] info: server.recovery requeued=2"


class TestRequestIds:
    def test_new_request_id_shape(self):
        rid = new_request_id()
        assert rid.startswith("req-")
        assert len(rid) == len("req-") + 12
        int(rid[4:], 16)  # hex payload
        assert new_request_id() != rid

    def test_bind_scopes_and_restores(self):
        assert current_request_id() is None
        with bind_request_id("req-outer"):
            assert current_request_id() == "req-outer"
            with bind_request_id("req-inner"):
                assert current_request_id() == "req-inner"
            assert current_request_id() == "req-outer"
        assert current_request_id() is None

    def test_set_request_id_unscoped(self):
        set_request_id("req-worker")
        assert current_request_id() == "req-worker"
        set_request_id(None)
        assert current_request_id() is None

    def test_bound_id_lands_in_records(self, jsonl):
        log = get_logger("test")
        with bind_request_id("req-abc123"):
            log.info("inside")
        log.info("outside")
        inside, outside = jsonl()
        assert inside["request_id"] == "req-abc123"
        assert "request_id" not in outside


class TestRobustness:
    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, *_args):
                raise OSError("pipe gone")

        configure_logging(level="info", json_mode=True, stream=Broken())
        get_logger("test").info("event")  # must not raise

    def test_default_stream_resolves_to_stderr(self, capsys):
        configure_logging(level="info", json_mode=True, stream=None)
        get_logger("test").info("to-stderr")
        assert "to-stderr" in capsys.readouterr().err
