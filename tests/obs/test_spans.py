"""Host-span tracing: recorder semantics, the Perfetto merge, and the
``equeue-sim --host-trace`` CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.obs import spans as obs_spans
from repro.obs.spans import HOST_PID, SpanRecorder, merge_host_trace, span
from repro.sim.tracing import TraceRecorder
from repro.tools import equeue_sim


class TestSpanRecorder:
    def test_disabled_span_is_shared_noop(self):
        first = span("anything", key="value")
        second = span("else")
        assert first is second  # the no-op is allocated once, ever
        with first:
            pass

    def test_enabled_span_records_complete_event(self):
        recorder = obs_spans.enable_spans()
        with span("engine.verify", mode="plan"):
            pass
        events = recorder.to_events()
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "engine.verify"
        assert event["ph"] == "X"
        assert event["pid"] == HOST_PID
        assert event["cat"] == "host"
        assert event["dur"] >= 0
        assert event["ts"] >= 0
        assert event["args"] == {"mode": "plan"}
        assert isinstance(event["tid"], str)

    def test_exception_annotates_and_propagates(self):
        recorder = obs_spans.enable_spans()
        with pytest.raises(RuntimeError):
            with span("engine.des_run"):
                raise RuntimeError("boom")
        (event,) = recorder.to_events()
        assert event["args"]["error"] == "RuntimeError"

    def test_non_jsonable_args_stringified(self):
        recorder = obs_spans.enable_spans()
        with span("scenario.build", config=complex(1, 2)):
            pass
        (event,) = recorder.to_events()
        assert event["args"]["config"] == str(complex(1, 2))

    def test_max_records_caps_and_counts_drops(self):
        recorder = SpanRecorder(max_records=2)
        for index in range(5):
            with recorder.open(f"span-{index}", {}):
                pass
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_enable_replaces_recorder(self):
        first = obs_spans.enable_spans()
        with span("one"):
            pass
        second = obs_spans.enable_spans()
        assert second is not first
        assert len(second) == 0
        assert obs_spans.spans_enabled()


class TestCycleTraceCap:
    @staticmethod
    def _fill(trace, count):
        for cycle in range(count):
            trace.record("step", "launch", "Processor", "ARMr5", cycle, 1)

    def test_trace_recorder_max_records(self):
        trace = TraceRecorder(enabled=True, max_records=3)
        self._fill(trace, 5)
        assert len(trace) == 3
        assert trace.dropped == 2

    def test_unbounded_by_default(self):
        trace = TraceRecorder(enabled=True)
        self._fill(trace, 5)
        assert len(trace) == 5
        assert trace.dropped == 0


class TestMergeHostTrace:
    def _events(self):
        recorder = obs_spans.enable_spans()
        with span("engine.des_run"):
            pass
        trace = TraceRecorder(enabled=True)
        trace.record("step", "launch", "Processor", "ARMr5", 0, 4)
        return recorder.to_events(), trace.to_events()

    def test_merged_json_holds_both_domains(self, tmp_path):
        host_events, cycle_events = self._events()
        path = tmp_path / "trace.json"
        text = merge_host_trace(host_events, cycle_events, path=str(path))
        assert path.read_text(encoding="utf-8") == text
        events = json.loads(text)
        pids = {event["pid"] for event in events}
        assert HOST_PID in pids
        assert "Processor" in pids
        phases = {event["ph"] for event in events}
        # Complete host spans, begin/end cycle slices, metadata labels.
        assert {"X", "M"} <= phases
        metadata = [event for event in events if event["ph"] == "M"]
        assert {m["pid"] for m in metadata} == pids
        for meta in metadata:
            assert meta["name"] == "process_name"

    def test_merge_without_path_returns_text_only(self):
        host_events, cycle_events = self._events()
        text = merge_host_trace(host_events, cycle_events)
        assert json.loads(text)


class TestHostTraceCLI:
    def test_scenario_host_trace_written(self, tmp_path, capsys):
        path = tmp_path / "host.json"
        code = equeue_sim.main(
            ["--scenario", "fir", "--host-trace", str(path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "host trace written to" in out
        events = json.loads(path.read_text(encoding="utf-8"))
        pids = {event["pid"] for event in events}
        assert HOST_PID in pids
        assert pids - {HOST_PID}  # at least one component-group pid
        host_names = {
            event["name"]
            for event in events
            if event["pid"] == HOST_PID and event["ph"] == "X"
        }
        # The pipeline stages the tentpole promises are all present.
        assert {"scenario.build", "engine.verify", "engine.des_run"} <= (
            host_names
        )

    def test_host_trace_rejected_for_sweeps(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            equeue_sim.main(
                [
                    "--scenario", "gemm", "--sweep",
                    "--host-trace", str(tmp_path / "host.json"),
                ]
            )
        assert "--host-trace" in capsys.readouterr().err

    def test_host_trace_single_input_only(self, tmp_path, capsys):
        first = tmp_path / "a.mlir"
        second = tmp_path / "b.mlir"
        first.write_text("module {\n}\n")
        second.write_text("module {\n}\n")
        code = equeue_sim.main(
            [
                str(first), str(second),
                "--host-trace", str(tmp_path / "host.json"),
            ]
        )
        assert code == 1
        assert "single input" in capsys.readouterr().err
