"""Unit tests for the metrics registry and its Prometheus exposition."""

from __future__ import annotations

import math

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    prometheus_name,
    render_prometheus,
)
from repro.obs.smoke import parse_metrics


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_increments(self, registry):
        c = registry.counter("test.hits", "help text")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError, match="only go up"):
            registry.counter("test.hits").inc(-1)

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("test.depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_factory_returns_same_instrument(self, registry):
        assert registry.counter("test.hits") is registry.counter("test.hits")

    def test_kind_mismatch_rejected(self, registry):
        registry.counter("test.hits")
        with pytest.raises(TypeError, match="already registered as counter"):
            registry.gauge("test.hits")

    def test_bad_names_rejected(self, registry):
        for bad in ("Upper.case", "1leading", "with space", ""):
            with pytest.raises(ValueError, match="bad metric name"):
                registry.counter(bad)

    def test_histogram_bucket_placement(self, registry):
        h = registry.histogram("test.seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 20.0):
            h.observe(value)
        assert h.count == 4
        assert h.sum == pytest.approx(20.65)
        # Cumulative le semantics: 0.1 catches 0.05 and the boundary hit.
        assert h.cumulative() == [(0.1, 2), (1.0, 3), (10.0, 3), (math.inf, 4)]

    def test_histogram_buckets_must_increase(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("test.bad", buckets=(1.0, 1.0))

    def test_default_time_buckets_span_expected_range(self):
        assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_TIME_BUCKETS[-1] == pytest.approx(100.0)
        assert all(
            b > a
            for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
        )


class TestCollectors:
    def test_snapshot_merges_instruments_and_collectors(self, registry):
        registry.counter("test.hits").inc(2)
        registry.register_collector(
            "stats", lambda: {"store.hits": 7, "store.misses": 1}
        )
        snap = registry.snapshot()
        assert snap["test.hits"] == 2.0
        assert snap["store.hits"] == 7.0
        assert snap["store.misses"] == 1.0

    def test_collector_replaced_by_name(self, registry):
        registry.register_collector("stats", lambda: {"v": 1})
        registry.register_collector("stats", lambda: {"v": 2})
        assert registry.snapshot() == {"v": 2.0}

    def test_collector_unregistered(self, registry):
        registry.register_collector("stats", lambda: {"v": 1})
        registry.unregister_collector("stats")
        assert registry.snapshot() == {}

    def test_failing_collector_contributes_nothing(self, registry):
        def boom():
            raise RuntimeError("half-initialized")

        registry.register_collector("sick", boom)
        registry.register_collector("healthy", lambda: {"ok": 1})
        assert registry.snapshot() == {"ok": 1.0}

    def test_non_numeric_and_bool_values_dropped(self, registry):
        registry.register_collector(
            "stats",
            lambda: {"num": 3, "flag": True, "text": "nope", "none": None},
        )
        assert registry.snapshot() == {"num": 3.0}


class TestPrometheusRendering:
    def test_every_sample_line_parses(self, registry):
        registry.counter("engine.runs", "engine runs").inc()
        registry.gauge("queue.depth").set(3)
        registry.histogram("run.seconds").observe(0.02)
        registry.register_collector("stats", lambda: {"store.hits": 5})
        body = render_prometheus(registry)
        samples = parse_metrics(body)  # raises on any malformed line
        assert samples["equeue_engine_runs"] == 1.0
        assert samples["equeue_queue_depth"] == 3.0
        assert samples["equeue_store_hits"] == 5.0
        assert samples["equeue_run_seconds_count"] == 1.0

    def test_help_and_type_lines(self, registry):
        registry.counter("engine.runs", "completed engine runs").inc()
        body = render_prometheus(registry)
        assert "# HELP equeue_engine_runs completed engine runs" in body
        assert "# TYPE equeue_engine_runs counter" in body

    def test_collector_values_typed_as_gauges(self, registry):
        registry.register_collector("stats", lambda: {"store.hits": 5})
        body = render_prometheus(registry)
        assert "# TYPE equeue_store_hits gauge" in body

    def test_histogram_expands_to_cumulative_buckets(self, registry):
        h = registry.histogram("run.seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        body = render_prometheus(registry)
        samples = parse_metrics(body)
        assert samples['equeue_run_seconds_bucket{le="0.1"}'] == 1.0
        assert samples['equeue_run_seconds_bucket{le="1"}'] == 1.0
        assert samples['equeue_run_seconds_bucket{le="+Inf"}'] == 2.0
        assert samples["equeue_run_seconds_count"] == 2.0
        assert samples["equeue_run_seconds_sum"] == pytest.approx(5.05)

    def test_instrument_shadows_collector_duplicate(self, registry):
        registry.counter("store.hits").inc(9)
        registry.register_collector("stats", lambda: {"store.hits": 5})
        body = render_prometheus(registry)
        # One sample, the typed instrument's — never a double emission.
        lines = [
            line
            for line in body.splitlines()
            if line.startswith("equeue_store_hits ")
        ]
        assert lines == ["equeue_store_hits 9"]

    def test_name_mapping(self):
        assert prometheus_name("store.hits") == "equeue_store_hits"
        assert (
            prometheus_name("scheduler.sub-mode.x")
            == "equeue_scheduler_sub_mode_x"
        )


class TestProcessSwitch:
    def test_disabled_by_default_here(self):
        assert obs_metrics.METRICS is None
        assert not obs_metrics.metrics_enabled()

    def test_enable_points_at_process_registry(self):
        reg = obs_metrics.enable_metrics()
        assert obs_metrics.METRICS is reg
        assert reg is obs_metrics.get_registry()
        assert obs_metrics.metrics_enabled()
        obs_metrics.disable_metrics()
        assert obs_metrics.METRICS is None
        # The registry object survives disable: counters keep history.
        assert obs_metrics.get_registry() is reg


GOLDEN_ENGINE_METRICS = (
    "engine.runs",
    "engine.cycles",
    "engine.scheduler_events",
    "engine.launches",
    "engine.plans_compiled",
    "engine.plan_cache_hits",
    "engine.blocks_codegenned",
    "engine.trace_records_dropped",
    "engine.run_seconds.count",
    "engine.run_seconds.sum",
)


class TestEngineGoldenKeys:
    def test_engine_run_populates_golden_names(self):
        """The documented engine metric names exist and move on a run."""
        from repro.scenarios import simulate_scenario

        before = obs_metrics.get_registry().snapshot()
        obs_metrics.enable_metrics()
        try:
            result, _ = simulate_scenario("fir")
        finally:
            obs_metrics.disable_metrics()
        after = obs_metrics.get_registry().snapshot()
        for name in GOLDEN_ENGINE_METRICS:
            assert name in after, f"missing golden metric {name}"
        assert after["engine.runs"] == before.get("engine.runs", 0.0) + 1
        assert (
            after["engine.cycles"]
            == before.get("engine.cycles", 0.0) + result.cycles
        )
