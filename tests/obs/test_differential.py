"""The telemetry differential guard: observing a simulation must never
change it.

Every scenario runs twice — telemetry fully off, then with the metrics
registry AND host-span tracer enabled — and the two results must be
bit-identical in everything the simulation semantically produces:
cycles, event counts, final buffer contents, and the oracle-checked
stats.  Only host-side fields (wall clock, the recorded spans
themselves) may differ.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import spans as obs_spans
from repro.scenarios import scenario_names, simulate_scenario

#: Summary fields that measure the *host*, not the simulated machine.
HOST_ONLY_FIELDS = ("execution_time_s",)


def _semantic_fingerprint(result, checked):
    summary = dataclasses.asdict(result.summary)
    for field in HOST_ONLY_FIELDS:
        summary.pop(field, None)
    buffers = {
        name: result.buffers[name].array.tolist()
        for name in sorted(result.buffers)
    }
    return {
        "cycles": result.cycles,
        "truncated": result.truncated,
        "summary": summary,
        "buffers": buffers,
        "checked": checked,
    }


@pytest.mark.parametrize("name", scenario_names())
def test_telemetry_on_is_bit_identical(name):
    obs_metrics.disable_metrics()
    obs_spans.disable_spans()
    # Warm the per-process program cache first so both measured runs see
    # identical compile counters (warm vs warm, not cold vs warm).
    simulate_scenario(name, seed=3)
    baseline = _semantic_fingerprint(
        *simulate_scenario(name, seed=3, check=True)
    )

    obs_metrics.enable_metrics()
    obs_spans.enable_spans()
    try:
        observed = _semantic_fingerprint(
            *simulate_scenario(name, seed=3, check=True)
        )
        recorded_spans = len(obs_spans.TRACER)
    finally:
        obs_metrics.disable_metrics()
        obs_spans.disable_spans()

    assert observed == baseline
    # The telemetry pass actually observed something — this guard must
    # not vacuously compare two untelemetered runs.
    assert recorded_spans > 0
    snapshot = obs_metrics.get_registry().snapshot()
    assert snapshot.get("engine.runs", 0) > 0


def test_fingerprint_catches_buffer_divergence():
    """The guard itself is sharp: a perturbed buffer fails equality."""
    result, checked = simulate_scenario("fir", seed=3, check=True)
    fingerprint = _semantic_fingerprint(result, checked)
    perturbed = _semantic_fingerprint(result, checked)
    first_buffer = next(iter(perturbed["buffers"]))
    flat = np.array(perturbed["buffers"][first_buffer])
    flat.flat[0] += 1
    perturbed["buffers"][first_buffer] = flat.tolist()
    assert perturbed != fingerprint
