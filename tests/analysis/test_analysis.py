"""Tests for the dataflow model, the DSE sweep, and LOC measurement."""

import pytest

from repro.analysis import (
    best_array_shape,
    generator_loc_report,
    loop_iterations,
    measure_loc,
    paper_sweep_spec,
    predicted_cycles,
    recommend_dataflow,
    run_sweep,
)
from repro.dialects.linalg import ConvDims


class TestDataflowModel:
    def test_iteration_law(self):
        dims = ConvDims(n=4, c=3, h=8, w=8, fh=3, fw=3)
        # WS: D1 = 27, D2 = 4 -> ceil(27/4) * ceil(4/4) = 7.
        assert loop_iterations("WS", dims, 4, 4) == 7
        # IS: D1 = 27, D2 = 36 -> 7 * 9 = 63.
        assert loop_iterations("IS", dims, 4, 4) == 63
        # OS: D1 = 4, D2 = 36 -> 1 * 9 = 9.
        assert loop_iterations("OS", dims, 4, 4) == 9

    def test_cycles_proportional_to_iterations(self):
        """The paper's rule: cycles scale with the iteration count for a
        fixed workload (T constant per dataflow)."""
        dims = ConvDims(n=8, c=4, h=8, w=8, fh=2, fw=2)
        for dataflow in ("WS", "IS", "OS"):
            tall = predicted_cycles(dataflow, dims, 2, 32)
            its_tall = loop_iterations(dataflow, dims, 2, 32)
            square = predicted_cycles(dataflow, dims, 8, 8)
            its_square = loop_iterations(dataflow, dims, 8, 8)
            if its_tall == its_square:
                continue
            assert (tall > square) == (its_tall > its_square)

    def test_best_array_shape_minimizes_cycles(self):
        dims = ConvDims(n=2, c=4, h=16, w=16, fh=3, fw=3)
        best = best_array_shape("WS", dims, total_pes=64)
        candidates = [(h, 64 // h) for h in (2, 4, 8, 16, 32)]
        best_cycles = predicted_cycles("WS", dims, *best)
        assert best_cycles == min(
            predicted_cycles("WS", dims, h, w) for h, w in candidates
        )

    def test_best_array_shape_no_candidates(self):
        dims = ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2)
        with pytest.raises(ValueError):
            best_array_shape("WS", dims, total_pes=63)

    def test_recommendation_ranks_all_three(self):
        dims = ConvDims(n=4, c=3, h=16, w=16, fh=3, fw=3)
        rec = recommend_dataflow(dims, 4, 4)
        assert {row["dataflow"] for row in rec["ranking"]} == {"WS", "IS", "OS"}
        cycles = [row["cycles"] for row in rec["ranking"]]
        assert cycles == sorted(cycles)
        assert rec["best"] == rec["ranking"][0]["dataflow"]


class TestSweep:
    def test_paper_space_size(self):
        spec = paper_sweep_spec()
        # 5 Ah x 5 H x 3 F x 3 C x 6 N x 3 dataflows = 4050 nominal combos;
        # filter>image points are invalid and skipped.
        nominal = 5 * 5 * 3 * 3 * 6 * 3
        assert nominal == 4050
        assert spec.count() == 4050 - 3 * 5 * 3 * 6 * 1  # F=4 > H=2 removed

    def test_analytical_sweep_fast_and_complete(self):
        spec = paper_sweep_spec()
        points = run_sweep(spec, use_des=False, sample=200)
        assert len(points) == 200
        for point in points:
            assert point.cycles > 0
            assert point.loop_iterations >= 1
            assert not point.simulated

    def test_des_matches_analytical_on_sample(self):
        """The justification for using the analytical model in the full
        sweep: on simulated points, DES == closed form exactly."""
        spec = paper_sweep_spec()
        points = run_sweep(
            spec, use_des=True, sample=6, max_cycles=4000, seed=3
        )
        assert points, "sample produced no feasible points"
        for point in points:
            assert point.simulated
            assert point.cycles == point.config.expected_cycles

    def test_iterations_cycles_correlation(self):
        """Fig. 12c-e: loop iterations are strongly correlated with cycles
        within each dataflow (the paper plots this as a near-linear
        scatter).  With the workload fixed, the relation is monotone up to
        the fill-time term, so correlation on the full sweep is high."""
        import numpy as np

        spec = paper_sweep_spec()
        points = run_sweep(spec, use_des=False)
        for dataflow in ("WS", "IS", "OS"):
            subset = [p for p in points if p.dataflow == dataflow]
            iterations = np.array([p.loop_iterations for p in subset], float)
            cycles = np.array([p.cycles for p in subset], float)
            correlation = np.corrcoef(np.log(iterations + 1), np.log(cycles))[
                0, 1
            ]
            assert correlation > 0.6, f"{dataflow}: corr={correlation:.2f}"

    def test_iterations_monotone_for_fixed_workload_and_fold_shape(self):
        """Exact monotonicity when only the fold count changes: a larger
        array never increases iterations, and with the same array shape
        more iterations means more cycles."""
        dims = ConvDims(n=8, c=4, h=16, w=16, fh=4, fw=4)
        for dataflow in ("WS", "IS", "OS"):
            small = loop_iterations(dataflow, dims, 2, 2)
            large = loop_iterations(dataflow, dims, 8, 8)
            assert large <= small
            cycles_small = predicted_cycles(dataflow, dims, 2, 2)
            cycles_large = predicted_cycles(dataflow, dims, 8, 8)
            assert cycles_large <= cycles_small


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        from repro.analysis import from_csv, to_csv

        spec = paper_sweep_spec()
        points = run_sweep(spec, use_des=False, sample=25)
        path = tmp_path / "sweep.csv"
        text = to_csv(points, path)
        assert text.splitlines()[0].startswith("dataflow,array_height")
        rows = from_csv(path)
        assert len(rows) == 25
        for point, row in zip(points, rows):
            assert row["cycles"] == point.cycles
            assert row["dataflow"] == point.dataflow
            assert row["loop_iterations"] == point.loop_iterations
            assert not row["simulated"]

    def test_csv_without_path(self):
        from repro.analysis import to_csv

        spec = paper_sweep_spec()
        points = run_sweep(spec, use_des=False, sample=3)
        text = to_csv(points)
        assert len(text.splitlines()) == 4

    def test_jsonl_roundtrip_matches_csv_records(self, tmp_path):
        """CSV and JSONL derive from one point_record mapping — same
        values, same keys, no drift."""
        import json

        from repro.analysis import from_csv, from_jsonl, points_to_jsonl, to_csv

        spec = paper_sweep_spec()
        points = run_sweep(spec, use_des=False, sample=10)
        jsonl_path = tmp_path / "sweep.jsonl"
        text = points_to_jsonl(points, jsonl_path)
        assert len(text.splitlines()) == 10
        records = from_jsonl(jsonl_path)
        csv_path = tmp_path / "sweep.csv"
        to_csv(points, csv_path)
        csv_rows = from_csv(csv_path)
        assert len(records) == len(csv_rows) == 10
        for record, row, point in zip(records, csv_rows, points):
            assert set(record) == set(row)
            assert record["cycles"] == row["cycles"] == point.cycles
            assert record["macs"] == row["macs"]
            assert record["simulated"] is False
            # JSONL keeps native types end to end.
            assert isinstance(record["execution_time_s"], float)
        # Every line is canonical: sorted keys, compact separators.
        first = text.splitlines()[0]
        assert first == json.dumps(
            json.loads(first), sort_keys=True, separators=(",", ":")
        )

    def test_record_line_is_canonical(self):
        import numpy as np

        from repro.analysis import record_line

        line = record_line({"b": np.int64(2), "a": [1, np.float64(0.5)]})
        assert line == '{"a":[1,0.5],"b":2}'
        with pytest.raises(TypeError, match="not JSON-serializable"):
            record_line({"x": object()})

    def test_to_jsonl_from_jsonl(self, tmp_path):
        from repro.analysis import from_jsonl, to_jsonl

        path = tmp_path / "records.jsonl"
        records = [{"k": 1}, {"k": 2, "nested": {"a": [1, 2]}}]
        to_jsonl(records, path)
        assert from_jsonl(path) == records


class TestLOC:
    def test_measure_loc_skips_comments(self, tmp_path):
        source = tmp_path / "x.py"
        source.write_text(
            '"""docstring\nmore\n"""\n# comment\n\nx = 1\ny = 2\n'
        )
        assert measure_loc(source) == 2

    def test_generator_report(self):
        report = generator_loc_report()
        assert report.total_loc > 100
        assert 0 < report.dataflow_conditional_loc < report.total_loc
        # The headline claim: switching dataflows touches only a small
        # fraction of the generator (vs SCALE-Sim's 410/569 = 72%).
        fraction = report.dataflow_conditional_loc / report.total_loc
        assert fraction < 0.5
