"""Parallel-vs-serial sweep determinism and cross-simulation caching
(the §VI-E batch-sweep subsystem end-to-end)."""

import pytest

from repro.analysis import SweepSpec, run_sweep
from repro.analysis.dse import _DES_RESULT_CACHE, clear_sweep_caches
from repro.sim.batch import process_compile_cache, structural_signature


def small_des_spec() -> SweepSpec:
    """48 cheap DES points on 8-PE arrays, with repeated structures."""
    return SweepSpec(
        array_heights=(2, 4),
        total_pes=8,
        image_sizes=(3,),
        filter_sizes=(1, 2),
        channels=(1, 2),
        filter_counts=(1, 2),
    )


def fingerprint(points):
    """Everything timing-semantic a DSE point records."""
    return [
        (
            p.config,
            p.cycles,
            p.loop_iterations,
            p.peak_write_bw_x_portion,
            p.simulated,
        )
        for p in points
    ]


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_sweep_caches()
    yield
    clear_sweep_caches()


class TestParallelDeterminism:
    def test_jobs4_matches_serial_reference(self):
        """The ISSUE's determinism contract: run_sweep(jobs=4) produces
        DSEPoints with identical cycles, loop_iterations, and bandwidth
        stats to the jobs=1 reference loop."""
        spec = small_des_spec()
        serial = run_sweep(spec, use_des=True, jobs=1)
        assert len(serial) == 48
        clear_sweep_caches()
        parallel = run_sweep(spec, use_des=True, jobs=4)
        assert fingerprint(parallel) == fingerprint(serial)
        for point in parallel:
            assert point.simulated
            assert point.cycles == point.config.expected_cycles

    def test_parallel_analytical_sweep_matches_serial(self):
        spec = small_des_spec()
        serial = run_sweep(spec, use_des=False, jobs=1)
        parallel = run_sweep(spec, use_des=False, jobs=3)
        assert fingerprint(parallel) == fingerprint(serial)

    def test_jobs_none_and_zero_use_default(self):
        spec = small_des_spec()
        reference = run_sweep(spec, use_des=True, jobs=1)
        points = run_sweep(spec, use_des=True, jobs=None)
        assert fingerprint(points) == fingerprint(reference)
        clear_sweep_caches()
        points = run_sweep(spec, use_des=True, jobs=0)
        assert fingerprint(points) == fingerprint(reference)


class TestCrossSimulationCaching:
    def test_compile_cache_hits_are_identical_to_cold(self):
        """The batch path (compile cache + structural result reuse) is
        bit-identical to the cold reference loop on a sub-space with
        repeated structures."""
        spec = small_des_spec()
        reference = run_sweep(
            spec,
            use_des=True,
            jobs=1,
            compile_cache=False,
            reuse_results=False,
        )
        clear_sweep_caches()
        cached = run_sweep(
            spec, use_des=True, jobs=1, compile_cache=True, reuse_results=True
        )
        assert fingerprint(cached) == fingerprint(reference)

    def test_compile_cache_is_hit_for_repeated_structures(self):
        spec = small_des_spec()
        signatures = {
            structural_signature(cfg) for cfg in spec.points()
        }
        assert len(signatures) < spec.count()  # the space repeats structures
        run_sweep(spec, use_des=True, jobs=1, compile_cache=True,
                  reuse_results=False)
        stats = process_compile_cache().stats
        assert stats.programs_built == len(signatures)
        assert stats.program_hits == spec.count() - len(signatures)

    def test_result_memo_replicates_per_signature(self):
        spec = small_des_spec()
        run_sweep(spec, use_des=True, jobs=1, compile_cache=True,
                  reuse_results=True)
        signatures = {structural_signature(cfg) for cfg in spec.points()}
        assert len(_DES_RESULT_CACHE) == len(signatures)

    def test_reference_loop_stays_cold(self):
        """jobs=1 defaults preserve the pre-batch behaviour exactly: no
        process-wide caches are touched."""
        spec = small_des_spec()
        run_sweep(spec, use_des=True, jobs=1)
        assert not process_compile_cache().entries
        assert not _DES_RESULT_CACHE
