"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.dialects  # noqa: F401  (register all dialects)


def conv2d_reference(ifmap: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Direct convolution: the functional ground truth."""
    n, c, fh, fw = weights.shape
    _, h, w = ifmap.shape
    eh, ew = h - fh + 1, w - fw + 1
    out = np.zeros((n, eh, ew), dtype=ifmap.dtype)
    for filt in range(n):
        for y in range(eh):
            for x in range(ew):
                out[filt, y, x] = np.sum(
                    ifmap[:, y : y + fh, x : x + fw] * weights[filt]
                )
    return out


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def module_and_builder():
    from repro import ir

    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    return module, builder
