"""Systolic generator tests: functional correctness + timing laws."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialects.linalg import ConvDims
from repro.generators.systolic import (
    SystolicConfig,
    build_systolic_program,
    im2col,
    weight_matrix,
)
from repro.sim import simulate
from tests.conftest import conv2d_reference


def run_config(cfg, rng):
    program = build_systolic_program(cfg)
    dims = cfg.dims
    ifmap = rng.integers(-4, 5, (dims.c, dims.h, dims.w)).astype(np.int32)
    weights = rng.integers(
        -4, 5, (dims.n, dims.c, dims.fh, dims.fw)
    ).astype(np.int32)
    result = simulate(program.module, inputs=program.prepare_inputs(ifmap, weights))
    got = program.extract_ofmap(result)
    want = conv2d_reference(ifmap, weights)
    return result, got, want


class TestMappingMath:
    def test_ws_dimensions(self):
        dims = ConvDims(n=4, c=3, h=8, w=8, fh=3, fw=3)
        cfg = SystolicConfig("WS", 4, 4, dims)
        assert cfg.d1 == 27      # Fh*Fw*C
        assert cfg.d2 == 4       # N
        assert cfg.stream_length == 36  # Eh*Ew
        assert cfg.loop_iterations == 7  # ceil(27/4)*ceil(4/4)

    def test_is_dimensions(self):
        dims = ConvDims(n=4, c=3, h=8, w=8, fh=3, fw=3)
        cfg = SystolicConfig("IS", 4, 4, dims)
        assert cfg.d1 == 27
        assert cfg.d2 == 36
        assert cfg.stream_length == 4

    def test_os_dimensions(self):
        dims = ConvDims(n=4, c=3, h=8, w=8, fh=3, fw=3)
        cfg = SystolicConfig("OS", 4, 4, dims)
        assert cfg.d1 == 4
        assert cfg.d2 == 36
        assert cfg.stream_length == 27

    def test_expected_cycles_formula(self):
        dims = ConvDims(n=1, c=3, h=8, w=8, fh=2, fw=2)
        cfg = SystolicConfig("WS", 4, 4, dims)
        # T = Eh*Ew = 49; per fold: 2*4 + 4 + 49 - 2 = 59;
        # folds = ceil(12/4) * ceil(1/4) = 3.
        assert cfg.expected_cycles == 3 * 59

    def test_bad_dataflow_rejected(self):
        dims = ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2)
        with pytest.raises(ValueError, match="dataflow"):
            SystolicConfig("XS", 4, 4, dims)

    def test_im2col_shapes_and_values(self):
        dims = ConvDims(n=1, c=2, h=3, w=3, fh=2, fw=2)
        ifmap = np.arange(18, dtype=np.int32).reshape(2, 3, 3)
        x = im2col(ifmap, dims)
        assert x.shape == (4, 8)  # (Eh*Ew, C*Fh*Fw)
        assert list(x[0]) == list(ifmap[:, 0:2, 0:2].ravel())

    def test_weight_matrix_layout(self):
        dims = ConvDims(n=2, c=2, h=3, w=3, fh=2, fw=2)
        weights = np.arange(16, dtype=np.int32).reshape(2, 2, 2, 2)
        w = weight_matrix(weights, dims)
        assert w.shape == (8, 2)
        assert list(w[:, 0]) == list(weights[0].ravel())

    def test_im2col_times_weights_equals_conv(self, rng):
        dims = ConvDims(n=3, c=2, h=6, w=5, fh=3, fw=2)
        ifmap = rng.integers(-5, 6, (2, 6, 5)).astype(np.int32)
        weights = rng.integers(-5, 6, (3, 2, 3, 2)).astype(np.int32)
        product = im2col(ifmap, dims) @ weight_matrix(weights, dims)
        expected = conv2d_reference(ifmap, weights)
        assert np.array_equal(
            product.T.reshape(dims.n, dims.eh, dims.ew), expected
        )


class TestDataflowSimulation:
    @pytest.mark.parametrize("dataflow", ["WS", "IS", "OS"])
    def test_functional_and_timing(self, dataflow, rng):
        dims = ConvDims(n=2, c=3, h=6, w=6, fh=2, fw=2)
        cfg = SystolicConfig(dataflow, 4, 4, dims)
        result, got, want = run_config(cfg, rng)
        assert np.array_equal(got, want), f"{dataflow} computed wrong conv"
        assert result.cycles == cfg.expected_cycles

    @pytest.mark.parametrize("dataflow", ["WS", "IS", "OS"])
    def test_nonsquare_array(self, dataflow, rng):
        dims = ConvDims(n=3, c=2, h=5, w=5, fh=2, fw=2)
        cfg = SystolicConfig(dataflow, 2, 8, dims)
        result, got, want = run_config(cfg, rng)
        assert np.array_equal(got, want)
        assert result.cycles == cfg.expected_cycles

    def test_single_pe_array(self, rng):
        dims = ConvDims(n=1, c=1, h=3, w=3, fh=2, fw=2)
        cfg = SystolicConfig("WS", 1, 1, dims)
        result, got, want = run_config(cfg, rng)
        assert np.array_equal(got, want)

    def test_array_larger_than_problem(self, rng):
        dims = ConvDims(n=1, c=1, h=3, w=3, fh=2, fw=2)
        cfg = SystolicConfig("WS", 8, 8, dims)  # heavy padding
        result, got, want = run_config(cfg, rng)
        assert np.array_equal(got, want)
        assert cfg.loop_iterations == 1

    def test_ofmap_write_traffic_matches_model(self, rng):
        dims = ConvDims(n=1, c=3, h=8, w=8, fh=2, fw=2)
        cfg = SystolicConfig("WS", 4, 4, dims)
        result, _, _ = run_config(cfg, rng)
        report = result.summary.memory_named("ofmap_mem")
        assert report is not None
        assert report.bytes_written == cfg.ofmap_write_bytes

    def test_pe_concurrency_visible_in_stats(self, rng):
        dims = ConvDims(n=4, c=2, h=6, w=6, fh=2, fw=2)
        cfg = SystolicConfig("WS", 4, 4, dims)
        program = build_systolic_program(cfg)
        ifmap = rng.integers(-2, 3, (2, 6, 6)).astype(np.int32)
        weights = rng.integers(-2, 3, (4, 2, 2, 2)).astype(np.int32)
        result = simulate(
            program.module, inputs=program.prepare_inputs(ifmap, weights)
        )
        # Total MAC work far exceeds total cycles: parallelism happened.
        assert cfg.dims.macs > result.cycles


@settings(max_examples=12, deadline=None)
@given(
    dataflow=st.sampled_from(["WS", "IS", "OS"]),
    n=st.integers(1, 3),
    c=st.integers(1, 3),
    size=st.integers(3, 6),
    filt=st.integers(1, 3),
    ah=st.sampled_from([2, 4]),
    seed=st.integers(0, 2**16),
)
def test_systolic_matches_reference_conv(dataflow, n, c, size, filt, ah, seed):
    """Property: for any small configuration, the DES computes the exact
    convolution and the exact closed-form cycle count."""
    if filt > size:
        return
    dims = ConvDims(n=n, c=c, h=size, w=size, fh=filt, fw=filt)
    cfg = SystolicConfig(dataflow, ah, 4, dims)
    rng = np.random.default_rng(seed)
    result, got, want = run_config(cfg, rng)
    assert np.array_equal(got, want)
    assert result.cycles == cfg.expected_cycles
