"""FIR generator tests: functional correctness + paper-case timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.fir import (
    FIRConfig,
    PAPER_CASES,
    build_fir_program,
    fir_reference,
)
from repro.sim import EngineOptions, simulate


def run_fir(cfg, seed=7):
    rng = np.random.default_rng(seed)
    samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
    coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
    program = build_fir_program(cfg)
    result = simulate(program.module, inputs=program.prepare_inputs(samples, coeffs))
    return result, program.extract_output(result), fir_reference(
        samples, coeffs, cfg.samples
    )


class TestConfigMath:
    def test_paper_case_constants(self):
        assert PAPER_CASES["case1"].expected_cycles == 2048
        assert PAPER_CASES["case2"].expected_cycles == 143
        assert PAPER_CASES["case3"].expected_cycles == 588
        assert PAPER_CASES["case4"].expected_cycles == 540

    def test_chunks(self):
        cfg = FIRConfig(n_cores=4)
        assert cfg.chunks == 16
        assert cfg.chunks_per_core == 4
        assert cfg.groups == 128

    def test_transfer_cycles(self):
        assert FIRConfig(n_cores=16, bandwidth=4).transfer_cycles == 4
        assert FIRConfig(n_cores=16, bandwidth=16).transfer_cycles == 1
        assert FIRConfig(n_cores=16).transfer_cycles == 0

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError, match="chunks"):
            FIRConfig(n_cores=3)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            FIRConfig(samples=510)


class TestPaperCases:
    @pytest.mark.parametrize("case", list(PAPER_CASES))
    def test_cycles_and_function(self, case):
        cfg = PAPER_CASES[case]
        result, got, want = run_fir(cfg)
        assert result.cycles == cfg.expected_cycles
        assert np.array_equal(got, want), f"{case} produced wrong FIR output"

    def test_case3_stalls_case4_balanced(self):
        """§VII's headline: 16 cores stall 3 of 4 cycles at bw 4 B/cyc;
        4 cores are balanced and strictly faster per unit area."""
        case3 = PAPER_CASES["case3"]
        case4 = PAPER_CASES["case4"]
        r3, _, _ = run_fir(case3)
        r4, _, _ = run_fir(case4)
        assert r4.cycles < r3.cycles
        # Case 3 wastes ~75% of compute: 16 cores x 588 cycles for work
        # that 4 cores do in 540.
        utilization3 = 16 * 128 / (16 * r3.cycles)
        utilization4 = 4 * 128 * 4 / (4 * r4.cycles)
        assert utilization3 < 0.3
        assert utilization4 > 0.9

    def test_case2_warmup_is_pipeline_depth(self):
        cfg = PAPER_CASES["case2"]
        assert cfg.expected_warmup == 15  # 16 stages, first fills at t=16

    def test_trace_shows_stalls_in_case3(self):
        cfg = PAPER_CASES["case3"]
        rng = np.random.default_rng(0)
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
        program = build_fir_program(cfg)
        result = simulate(
            program.module,
            EngineOptions(trace=True),
            inputs=program.prepare_inputs(samples, coeffs),
        )
        core1 = result.trace.slices_for("aie_1")
        assert len(core1) == cfg.groups
        # Steady-state: consecutive groups on a cascade-gated core start 4
        # cycles apart although each compute takes 1 cycle — the 3-cycle
        # stall of Fig. 13.
        starts = sorted(record.start for record in core1)
        gaps = [b - a for a, b in zip(starts[20:], starts[21:40])]
        assert all(gap == 4 for gap in gaps)


class TestScaledConfigs:
    @pytest.mark.parametrize("n_cores", [2, 8])
    def test_other_splits_work(self, n_cores):
        cfg = FIRConfig(n_cores=n_cores, bandwidth=4, samples=64)
        result, got, want = run_fir(cfg)
        assert np.array_equal(got, want)
        assert result.cycles == cfg.expected_cycles

    def test_wider_bandwidth_removes_stalls(self):
        narrow = FIRConfig(n_cores=16, bandwidth=4, samples=64)
        wide = FIRConfig(n_cores=16, bandwidth=16, samples=64)
        r_narrow, _, _ = run_fir(narrow)
        r_wide, _, _ = run_fir(wide)
        assert r_wide.cycles < r_narrow.cycles
        assert r_wide.cycles == wide.expected_cycles

    def test_short_filter(self):
        cfg = FIRConfig(n_cores=4, taps=8, samples=64)
        result, got, want = run_fir(cfg)
        assert np.array_equal(got, want)


@settings(max_examples=10, deadline=None)
@given(
    n_cores=st.sampled_from([1, 2, 4, 8, 16]),
    bandwidth=st.sampled_from([None, 4, 8]),
    seed=st.integers(0, 2**16),
)
def test_fir_property(n_cores, bandwidth, seed):
    """Any core split / bandwidth yields the exact FIR result and matches
    the closed-form pipeline timing."""
    cfg = FIRConfig(n_cores=n_cores, bandwidth=bandwidth, samples=64)
    result, got, want = run_fir(cfg, seed=seed)
    assert np.array_equal(got, want)
    assert result.cycles == cfg.expected_cycles
