"""Matmul-on-systolic tests (the matmul_dims degenerate-conv mapping)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators.systolic import (
    SystolicConfig,
    build_systolic_program,
    matmul_dims,
    matmul_inputs,
    matmul_output,
)
from repro.sim import simulate


def run_matmul(dataflow, a, b, ah=4, aw=4):
    m, k = a.shape
    _, n = b.shape
    cfg = SystolicConfig(dataflow, ah, aw, matmul_dims(m, k, n))
    program = build_systolic_program(cfg)
    ifmap, weights = matmul_inputs(a, b)
    result = simulate(program.module, inputs=program.prepare_inputs(ifmap, weights))
    return cfg, result, matmul_output(program.extract_ofmap(result))


class TestMapping:
    def test_dims(self):
        dims = matmul_dims(12, 9, 6)
        assert (dims.c, dims.h, dims.w) == (9, 12, 1)
        assert (dims.n, dims.fh, dims.fw) == (6, 1, 1)
        assert dims.eh == 12 and dims.ew == 1
        assert dims.macs == 12 * 9 * 6

    def test_input_layouts(self, rng):
        a = rng.integers(-3, 4, (5, 3)).astype(np.int32)
        b = rng.integers(-3, 4, (3, 4)).astype(np.int32)
        ifmap, weights = matmul_inputs(a, b)
        assert ifmap.shape == (3, 5, 1)
        assert weights.shape == (4, 3, 1, 1)

    def test_contraction_mismatch(self, rng):
        a = rng.integers(0, 2, (5, 3))
        b = rng.integers(0, 2, (4, 4))
        with pytest.raises(ValueError, match="contraction"):
            matmul_inputs(a, b)


class TestExecution:
    @pytest.mark.parametrize("dataflow", ["WS", "IS", "OS"])
    def test_matmul_exact(self, dataflow, rng):
        a = rng.integers(-5, 6, (10, 7)).astype(np.int32)
        b = rng.integers(-5, 6, (7, 5)).astype(np.int32)
        cfg, result, c = run_matmul(dataflow, a, b)
        assert np.array_equal(c, a @ b)
        assert result.cycles == cfg.expected_cycles

    def test_tall_skinny(self, rng):
        a = rng.integers(-5, 6, (17, 2)).astype(np.int32)
        b = rng.integers(-5, 6, (2, 2)).astype(np.int32)
        _, _, c = run_matmul("WS", a, b, ah=2, aw=2)
        assert np.array_equal(c, a @ b)


@settings(max_examples=10, deadline=None)
@given(
    m=st.integers(1, 8),
    k=st.integers(1, 8),
    n=st.integers(1, 8),
    dataflow=st.sampled_from(["WS", "IS", "OS"]),
    seed=st.integers(0, 2**16),
)
def test_matmul_property(m, k, n, dataflow, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(-4, 5, (m, k)).astype(np.int32)
    b = rng.integers(-4, 5, (k, n)).astype(np.int32)
    cfg, result, c = run_matmul(dataflow, a, b, ah=2, aw=2)
    assert np.array_equal(c, a @ b)
    assert result.cycles == cfg.expected_cycles
