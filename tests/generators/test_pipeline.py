"""Lowering-pipeline tests (the Fig. 11 experiment apparatus)."""

import numpy as np
import pytest

from repro.dialects.linalg import ConvDims
from repro.generators.pipeline import STAGES, LoweringPipeline


@pytest.fixture(scope="module")
def small_pipeline_results():
    pipeline = LoweringPipeline(
        dims=ConvDims(n=2, c=2, h=6, w=6, fh=3, fw=3), dataflow="WS"
    )
    return pipeline.run_all()


class TestStageConstruction:
    def test_stage_names(self):
        assert STAGES == ("linalg", "affine", "reassign", "systolic")

    def test_linalg_stage_has_conv(self):
        pipeline = LoweringPipeline(dims=ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2))
        module = pipeline.build_stage("linalg")
        assert any(op.name == "linalg.conv2d" for op in module.walk())

    def test_affine_stage_has_loops_and_reads(self):
        pipeline = LoweringPipeline(dims=ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2))
        module = pipeline.build_stage("affine")
        names = {op.name for op in module.walk()}
        assert "affine.for" in names
        assert "equeue.read" in names
        assert "linalg.conv2d" not in names

    def test_reassign_stage_has_memcpys(self):
        pipeline = LoweringPipeline(dims=ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2))
        module = pipeline.build_stage("reassign")
        memcpys = [op for op in module.walk() if op.name == "equeue.memcpy"]
        assert len(memcpys) == 3  # ifmap in, weight in, ofmap out

    def test_unknown_stage(self):
        pipeline = LoweringPipeline(dims=ConvDims(n=1, c=1, h=4, w=4, fh=2, fw=2))
        with pytest.raises(ValueError):
            pipeline.build_stage("rtl")


class TestFig11Shape:
    def test_all_stages_same_convolution(self, small_pipeline_results):
        results = small_pipeline_results
        reference = results["linalg"].ofmap
        for stage in STAGES:
            assert np.array_equal(results[stage].ofmap, reference)

    def test_cycles_decrease_along_pipeline(self, small_pipeline_results):
        results = small_pipeline_results
        cycles = [results[stage].cycles for stage in STAGES]
        assert cycles == sorted(cycles, reverse=True), cycles
        # And the systolic stage is dramatically faster (16 PEs).
        assert results["systolic"].cycles * 4 < results["reassign"].cycles

    def test_sram_bw_grows_linalg_to_affine(self, small_pipeline_results):
        results = small_pipeline_results
        assert (
            results["affine"].sram_read_bw > results["linalg"].sram_read_bw
        )

    def test_register_bw_zero_until_reassign(self, small_pipeline_results):
        results = small_pipeline_results
        assert results["linalg"].register_read_bw == 0
        assert results["affine"].register_read_bw == 0
        assert results["reassign"].register_read_bw > 0
        assert results["systolic"].register_read_bw > 0

    @pytest.mark.parametrize("dataflow", ["IS", "OS"])
    def test_other_dataflows_share_first_stages(self, dataflow):
        """§VI-D: the first three stages are dataflow-independent."""
        ws = LoweringPipeline(
            dims=ConvDims(n=2, c=1, h=5, w=5, fh=2, fw=2), dataflow="WS"
        )
        other = LoweringPipeline(
            dims=ConvDims(n=2, c=1, h=5, w=5, fh=2, fw=2), dataflow=dataflow
        )
        for stage in ("linalg", "affine", "reassign"):
            ws_result = ws.run_stage(stage)
            other_result = other.run_stage(stage)
            assert ws_result.cycles == other_result.cycles
        # The final stage differs between dataflows.
        assert (
            ws.run_stage("systolic").cycles
            != other.run_stage("systolic").cycles
        )
