"""Unit tests for blocks and regions."""

import pytest

from repro.ir import Block, IRError, Operation, Region, i32, index


class TestBlock:
    def test_append_sets_parent(self):
        block = Block()
        op = Operation.create("test.x")
        block.append(op)
        assert op.parent is block
        assert len(block) == 1
        assert block.first_op is op
        assert block.terminator is op

    def test_insert_before_after(self):
        block = Block()
        a = block.append(Operation.create("test.a"))
        c = block.append(Operation.create("test.c"))
        b = Operation.create("test.b")
        block.insert_before(c, b)
        assert [op.name for op in block] == ["test.a", "test.b", "test.c"]
        d = Operation.create("test.d")
        block.insert_after(a, d)
        assert [op.name for op in block] == [
            "test.a", "test.d", "test.b", "test.c",
        ]

    def test_index_of_missing_raises(self):
        block = Block()
        with pytest.raises(IRError):
            block.index_of(Operation.create("test.x"))

    def test_add_and_erase_argument(self):
        block = Block(arg_types=[i32])
        arg = block.add_argument(index, name_hint="iv")
        assert arg.index == 1
        assert arg.name_hint == "iv"
        block.erase_argument(0)
        assert block.arguments[0] is arg
        assert arg.index == 0

    def test_erase_argument_with_uses_raises(self):
        block = Block(arg_types=[i32])
        Operation.create("test.use", [block.arguments[0]], [])
        with pytest.raises(IRError):
            block.erase_argument(0)

    def test_remove_clears_parent(self):
        block = Block()
        op = block.append(Operation.create("test.x"))
        block.remove(op)
        assert op.parent is None
        assert block.empty


class TestRegion:
    def test_append_blocks(self):
        region = Region()
        b0 = region.append(Block())
        b1 = region.append(Block())
        assert region.entry_block is b0
        assert len(region) == 2
        assert b1.parent is region

    def test_region_parent_op(self):
        block = Block()
        region = Region([block])
        op = Operation.create("test.wrap", [], [], regions=[region])
        assert region.parent is op
        assert block.parent_op is op

    def test_clone_remaps_block_args(self):
        block = Block(arg_types=[i32])
        user = Operation.create("test.use", [block.arguments[0]], [])
        block.append(user)
        region = Region([block])
        Operation.create("test.wrap", [], [], regions=[region])

        clone = region.clone()
        new_block = clone.entry_block
        assert new_block.ops[0].operand(0) is new_block.arguments[0]
        assert block.arguments[0].num_uses == 1  # original untouched

    def test_walk(self):
        block = Block()
        block.append(Operation.create("test.a"))
        block.append(Operation.create("test.b"))
        region = Region([block])
        assert [op.name for op in region.walk()] == ["test.a", "test.b"]
