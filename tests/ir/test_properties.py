"""Hypothesis property tests for the IR core.

The headline property: any randomly-generated well-formed module survives a
print → parse → print round-trip byte-identically and still verifies.
"""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ir
from repro.ir import parse_module, print_op, verify

# -- strategies -------------------------------------------------------------

_identifiers = st.text(
    alphabet=string.ascii_lowercase + "_", min_size=1, max_size=8
).filter(lambda s: s not in ("true", "false", "unit", "index", "none"))

_scalar_types = st.sampled_from(
    [ir.i1, ir.i8, ir.i32, ir.i64, ir.f32, ir.f64, ir.index]
)

_shapes = st.lists(st.integers(1, 16), min_size=0, max_size=3).map(tuple)

_types = st.one_of(
    _scalar_types,
    st.builds(ir.MemRefType, _shapes, st.sampled_from([ir.i32, ir.f32])),
    st.builds(ir.TensorType, _shapes, st.sampled_from([ir.i32, ir.f32])),
)


def _attr_values():
    simple = st.one_of(
        st.integers(-(2**31), 2**31 - 1),
        st.booleans(),
        st.text(string.ascii_letters + string.digits + " _", max_size=12),
        st.floats(
            allow_nan=False, allow_infinity=False,
            min_value=-1e9, max_value=1e9,
        ),
    )
    return st.recursive(
        simple,
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.dictionaries(_identifiers, children, max_size=3),
        ),
        max_leaves=6,
    )


@st.composite
def random_modules(draw):
    """A random module of constant-producing and consuming ops."""
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    available = []
    n_ops = draw(st.integers(1, 12))
    for i in range(n_ops):
        choice = draw(st.integers(0, 2))
        if choice == 0 or not available:
            result_type = draw(_types)
            op = builder.create(
                f"test.make{i}", [], [result_type],
                {draw(_identifiers): draw(_attr_values())},
            )
            available.append(op.result())
        elif choice == 1:
            n_operands = draw(st.integers(1, min(3, len(available))))
            operands = [
                available[draw(st.integers(0, len(available) - 1))]
                for _ in range(n_operands)
            ]
            op = builder.create(f"test.use{i}", operands, [draw(_types)])
            available.append(op.result())
        else:
            # Single-block region op capturing nothing (not isolated).
            block = ir.Block(arg_types=[draw(_scalar_types)])
            inner = ir.Builder(ir.InsertionPoint.at_end(block))
            inner.create("test.inner", [block.arguments[0]], [])
            builder.create(
                f"test.wrap{i}", [], [], {}, [ir.Region([block])]
            )
    return module


# -- properties ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(random_modules())
def test_print_parse_print_is_identity(module):
    text = print_op(module)
    reparsed = parse_module(text)
    assert print_op(reparsed) == text


@settings(max_examples=60, deadline=None)
@given(random_modules())
def test_random_modules_verify(module):
    verify(module)
    verify(parse_module(print_op(module)))


@settings(max_examples=40, deadline=None)
@given(random_modules())
def test_clone_preserves_text(module):
    clone = module.clone()
    assert print_op(clone) == print_op(module)


@settings(max_examples=40, deadline=None)
@given(_attr_values())
def test_attr_python_roundtrip(value):
    from repro.ir import attr_from_python, attr_to_python

    assert attr_to_python(attr_from_python(value)) == value
