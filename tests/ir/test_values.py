"""Unit tests for SSA values and use-def chains."""

from repro.ir import Operation, i32, index
from repro.ir.values import Value


def _op_with_results(n):
    return Operation.create("test.producer", [], [i32] * n)


class TestUseDefChains:
    def test_new_value_has_no_uses(self):
        value = Value(i32)
        assert not value.has_uses
        assert value.num_uses == 0

    def test_operand_registers_use(self):
        producer = _op_with_results(1)
        consumer = Operation.create("test.consumer", [producer.result()], [])
        assert producer.result().num_uses == 1
        assert consumer.operands[0].value is producer.result()

    def test_users_distinct_in_order(self):
        producer = _op_with_results(1)
        value = producer.result()
        consumer_a = Operation.create("test.a", [value, value], [])
        consumer_b = Operation.create("test.b", [value], [])
        assert value.num_uses == 3
        assert value.users() == [consumer_a, consumer_b]

    def test_replace_all_uses_with(self):
        old = _op_with_results(1)
        new = _op_with_results(1)
        consumer = Operation.create("test.c", [old.result(), old.result()], [])
        old.result().replace_all_uses_with(new.result())
        assert old.result().num_uses == 0
        assert new.result().num_uses == 2
        assert consumer.operand(0) is new.result()
        assert consumer.operand(1) is new.result()

    def test_replace_with_self_is_noop(self):
        producer = _op_with_results(1)
        Operation.create("test.c", [producer.result()], [])
        producer.result().replace_all_uses_with(producer.result())
        assert producer.result().num_uses == 1

    def test_operand_set_updates_both_sides(self):
        a = _op_with_results(1)
        b = _op_with_results(1)
        consumer = Operation.create("test.c", [a.result()], [])
        consumer.operands[0].set(b.result())
        assert a.result().num_uses == 0
        assert b.result().num_uses == 1

    def test_operand_drop(self):
        a = _op_with_results(1)
        consumer = Operation.create("test.c", [a.result()], [])
        consumer.operands[0].drop()
        assert a.result().num_uses == 0


class TestResultAndArgumentIdentity:
    def test_result_owner_and_index(self):
        producer = _op_with_results(3)
        for i, result in enumerate(producer.results):
            assert result.owner is producer
            assert result.index == i

    def test_block_argument_owner(self):
        from repro.ir import Block

        block = Block(arg_types=[i32, index])
        assert block.arguments[0].owner is block
        assert block.arguments[1].index == 1
        assert block.arguments[1].type == index

    def test_name_hints(self):
        value = Value(i32, name_hint="acc")
        assert value.name_hint == "acc"
        assert "acc" in repr(value)
