"""Unit tests for Operation construction, mutation, and cloning."""

import pytest

from repro.ir import (
    Block,
    IRError,
    Operation,
    Region,
    i32,
    lookup_op_class,
    registered_ops,
)


class TestCreation:
    def test_registered_class_dispatch(self):
        op = Operation.create("equeue.launch", result_types=[])
        assert type(op).__name__ == "LaunchOp"

    def test_unregistered_name_gives_generic(self):
        op = Operation.create("test.unknown")
        assert type(op) is Operation
        assert op.name == "test.unknown"

    def test_attribute_conversion(self):
        op = Operation.create("test.x", attributes={"k": 5, "s": "hi"})
        assert op.get_attr("k") == 5
        assert op.get_attr("s") == "hi"
        assert op.get_attr("missing", "d") == "d"

    def test_registry_contains_core_ops(self):
        names = registered_ops()
        for expected in (
            "builtin.module", "equeue.launch", "equeue.memcpy",
            "affine.for", "arith.addi", "linalg.conv2d", "scf.if",
        ):
            assert expected in names
        assert lookup_op_class("equeue.read") is not None


class TestOperandMutation:
    def test_insert_and_erase_operand_reindexes(self):
        a = Operation.create("test.p", [], [i32])
        b = Operation.create("test.p", [], [i32])
        consumer = Operation.create("test.c", [a.result()], [])
        consumer.append_operand(b.result())
        assert [o.index for o in consumer.operands] == [0, 1]
        consumer.erase_operand(0)
        assert a.result().num_uses == 0
        assert consumer.operands[0].index == 0
        assert consumer.operand(0) is b.result()

    def test_set_operand(self):
        a = Operation.create("test.p", [], [i32])
        b = Operation.create("test.p", [], [i32])
        consumer = Operation.create("test.c", [a.result()], [])
        consumer.set_operand(0, b.result())
        assert consumer.operand(0) is b.result()


class TestEraseAndDetach:
    def test_erase_refuses_with_live_uses(self):
        producer = Operation.create("test.p", [], [i32])
        Operation.create("test.c", [producer.result()], [])
        with pytest.raises(IRError):
            producer.erase()

    def test_erase_removes_from_block(self):
        block = Block()
        op = Operation.create("test.p", [], [i32])
        block.append(op)
        op.erase()
        assert block.empty
        assert op.parent is None

    def test_erase_drops_nested_references(self):
        producer = Operation.create("test.p", [], [i32])
        inner_block = Block()
        inner = Operation.create("test.use", [producer.result()], [])
        inner_block.append(inner)
        outer = Operation.create(
            "test.region_op", [], [], regions=[Region([inner_block])]
        )
        outer.erase()
        assert producer.result().num_uses == 0

    def test_detach_keeps_references(self):
        block = Block()
        producer = Operation.create("test.p", [], [i32])
        consumer = Operation.create("test.c", [producer.result()], [])
        block.append(producer)
        block.append(consumer)
        consumer.detach()
        assert consumer.parent is None
        assert producer.result().num_uses == 1


class TestClone:
    def test_clone_remaps_internal_values(self):
        block = Block()
        producer = Operation.create("test.p", [], [i32])
        consumer = Operation.create("test.c", [producer.result()], [i32])
        inner = Block()
        inner.append(producer)
        inner.append(consumer)
        outer = Operation.create("test.wrap", [], [], regions=[Region([inner])])
        block.append(outer)

        clone = outer.clone()
        cloned_ops = clone.regions[0].entry_block.ops
        assert cloned_ops[1].operand(0) is cloned_ops[0].result()
        # Original untouched.
        assert consumer.operand(0) is producer.result()

    def test_clone_keeps_external_operands(self):
        external = Operation.create("test.p", [], [i32])
        user = Operation.create("test.c", [external.result()], [])
        clone = user.clone()
        assert clone.operand(0) is external.result()
        assert external.result().num_uses == 2

    def test_clone_with_value_map(self):
        old = Operation.create("test.p", [], [i32])
        new = Operation.create("test.p", [], [i32])
        user = Operation.create("test.c", [old.result()], [])
        clone = user.clone({old.result(): new.result()})
        assert clone.operand(0) is new.result()

    def test_clone_copies_attributes(self):
        op = Operation.create("test.x", attributes={"k": 3})
        clone = op.clone()
        assert clone.get_attr("k") == 3
        clone.set_attr("k", 4)
        assert op.get_attr("k") == 3


class TestWalk:
    def test_walk_preorder(self):
        inner_block = Block()
        inner_block.append(Operation.create("test.leaf"))
        outer = Operation.create(
            "test.wrap", [], [], regions=[Region([inner_block])]
        )
        names = [op.name for op in outer.walk()]
        assert names == ["test.wrap", "test.leaf"]

    def test_parent_op(self):
        inner_block = Block()
        leaf = Operation.create("test.leaf")
        inner_block.append(leaf)
        outer = Operation.create(
            "test.wrap", [], [], regions=[Region([inner_block])]
        )
        assert leaf.parent_op is outer
        assert outer.parent_op is None
