"""Unit tests for the op builder and insertion points."""

import pytest

from repro.ir import (
    Block,
    Builder,
    InsertionPoint,
    IRError,
    Operation,
    Region,
    create_module,
    i32,
)


class TestInsertionPoints:
    def test_at_end_appends(self):
        block = Block()
        builder = Builder(InsertionPoint.at_end(block))
        builder.create("test.a")
        builder.create("test.b")
        assert [op.name for op in block] == ["test.a", "test.b"]

    def test_at_begin_prepends(self):
        block = Block()
        block.append(Operation.create("test.z"))
        builder = Builder(InsertionPoint.at_begin(block))
        builder.create("test.a")
        assert [op.name for op in block] == ["test.a", "test.z"]

    def test_before_and_after(self):
        block = Block()
        anchor = block.append(Operation.create("test.anchor"))
        Builder(InsertionPoint.before(anchor)).create("test.pre")
        Builder(InsertionPoint.after(anchor)).create("test.post")
        assert [op.name for op in block] == [
            "test.pre", "test.anchor", "test.post",
        ]

    def test_before_detached_op_raises(self):
        with pytest.raises(IRError):
            InsertionPoint.before(Operation.create("test.x"))

    def test_builder_without_ip_raises(self):
        builder = Builder()
        with pytest.raises(IRError):
            builder.create("test.x")

    def test_sequential_inserts_maintain_order(self):
        block = Block()
        block.append(Operation.create("test.tail"))
        builder = Builder(InsertionPoint.at_begin(block))
        builder.create("test.first")
        builder.create("test.second")
        assert [op.name for op in block] == [
            "test.first", "test.second", "test.tail",
        ]


class TestBuilderContexts:
    def test_at_contextmanager_restores(self):
        block_a, block_b = Block(), Block()
        builder = Builder(InsertionPoint.at_end(block_a))
        with builder.at(InsertionPoint.at_end(block_b)):
            builder.create("test.inner")
        builder.create("test.outer")
        assert [op.name for op in block_a] == ["test.outer"]
        assert [op.name for op in block_b] == ["test.inner"]

    def test_create_block(self):
        builder = Builder()
        region = Region()
        block = builder.create_block(region, arg_types=[i32])
        assert region.entry_block is block
        assert block.arguments[0].type == i32

    def test_create_returns_registered_class(self):
        module = create_module()
        builder = Builder(InsertionPoint.at_end(module.body))
        op = builder.create("equeue.control_start", [], [])
        assert type(op).__name__ == "ControlStartOp"
