"""Verifier tests: dominance, isolation, traits, per-op checks."""

import pytest

from repro import ir
from repro.dialects import arith
from repro.dialects.equeue import EQueueBuilder, types as eqt
from repro.ir import (
    Block,
    Operation,
    Region,
    VerificationError,
    verify,
    verify_value_integrity,
)


class TestDominance:
    def test_use_before_def_rejected(self, module_and_builder):
        module, builder = module_and_builder
        producer = builder.create("test.p", [], [ir.i32])
        consumer = builder.create("test.c", [producer.result()], [])
        # Move the consumer before the producer.
        consumer.detach()
        module.body.insert(0, consumer)
        with pytest.raises(VerificationError, match="dominate"):
            verify(module)

    def test_straightline_ok(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 1, ir.i32)
        arith.addi(builder, a, a)
        verify(module)

    def test_nested_region_sees_outer_values(self, module_and_builder):
        module, builder = module_and_builder
        value = arith.constant(builder, 1, ir.index)
        from repro.dialects import affine

        affine.for_loop(
            builder, 0, 4,
            body=lambda b, iv: b.create("test.use", [value], []),
        )
        verify(module)  # affine.for is not isolated: capture is legal


class TestIsolation:
    def test_launch_cannot_capture_implicitly(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        kernel = eq.create_proc("ARMr5")
        leaked = arith.constant(builder, 7, ir.i32)
        start = eq.control_start()

        block = Block()
        inner = ir.Builder(ir.InsertionPoint.at_end(block))
        inner.create("test.use", [leaked], [])  # illegal implicit capture
        inner.create("equeue.return_values", [], [])
        builder.create(
            "equeue.launch", [start, kernel], [eqt.event], {}, [Region([block])]
        )
        with pytest.raises(VerificationError, match="dominate"):
            verify(module)

    def test_launch_with_explicit_capture_ok(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        kernel = eq.create_proc("ARMr5")
        value = arith.constant(builder, 7, ir.i32)
        start = eq.control_start()
        eq.launch(
            start, kernel, args=[value],
            body=lambda b, v: b.create("test.use", [v], []) and None,
        )
        verify(module)


class TestTraits:
    def test_terminator_must_be_last(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        kernel = eq.create_proc("ARMr5")
        start = eq.control_start()
        done, = eq.launch(start, kernel, body=lambda b: None)
        # Sneak an op after the terminator.
        launch = done.owner
        launch.regions[0].entry_block.append(Operation.create("test.late"))
        with pytest.raises(VerificationError):
            verify(module)

    def test_module_single_block(self):
        module = ir.create_module()
        module.regions[0].append(Block())
        with pytest.raises(VerificationError, match="single-block"):
            verify(module)


class TestPerOpVerifiers:
    def test_launch_arg_count_mismatch(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        kernel = eq.create_proc("ARMr5")
        value = arith.constant(builder, 1, ir.i32)
        start = eq.control_start()
        block = Block()  # no block args despite one capture
        ir.Builder(ir.InsertionPoint.at_end(block)).create(
            "equeue.return_values", [], []
        )
        builder.create(
            "equeue.launch", [start, kernel, value], [eqt.event], {},
            [Region([block])],
        )
        with pytest.raises(VerificationError, match="captured"):
            verify(module)

    def test_cmpi_bad_predicate(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 1, ir.i32)
        builder.create(
            "arith.cmpi", [a, a], [ir.i1], {"predicate": "bogus"}
        )
        with pytest.raises(VerificationError, match="predicate"):
            verify(module)

    def test_addi_type_mismatch(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 1, ir.i32)
        b = arith.constant(builder, 1, ir.i64)
        builder.create("arith.addi", [a, b], [ir.i32])
        with pytest.raises(VerificationError, match="differ"):
            verify(module)

    def test_memcpy_offsets_require_count(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        dma = eq.create_dma()
        mem = eq.create_mem("SRAM", 64, ir.i32)
        a = eq.alloc(mem, [8], ir.i32)
        b = eq.alloc(mem, [8], ir.i32)
        start = eq.control_start()
        zero = arith.constant(builder, 0, ir.index)
        builder.create(
            "equeue.memcpy", [start, a, b, dma, zero, zero], [eqt.event],
            {"connected": False, "offset_operands": True},
        )
        with pytest.raises(VerificationError, match="count"):
            verify(module)


class TestValueIntegrity:
    def test_intact_module_passes(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 1, ir.i32)
        arith.addi(builder, a, a)
        verify_value_integrity(module)
