"""Printer/parser round-trip tests, including malformed-input diagnostics."""

import pytest

from repro import ir
from repro.dialects import arith
from repro.dialects.equeue import EQueueBuilder
from repro.ir import ParseError, parse_module, parse_op, print_op


def roundtrip(module):
    text = print_op(module)
    reparsed = parse_module(text)
    assert print_op(reparsed) == text
    ir.verify(reparsed)
    return text


class TestBasicRoundtrip:
    def test_empty_module(self, module_and_builder):
        module, _ = module_and_builder
        text = roundtrip(module)
        assert text.startswith("builtin.module()")

    def test_constants_and_arith(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 3, ir.i32)
        b = arith.constant(builder, 4, ir.i32)
        arith.addi(builder, a, b)
        text = roundtrip(module)
        assert "arith.addi" in text
        assert "3 : i32" in text

    def test_name_hints_preserved(self, module_and_builder):
        module, builder = module_and_builder
        value = arith.constant(builder, 1, ir.i32)
        value.name_hint = "my_value"
        text = print_op(module)
        assert "%my_value" in text
        reparsed = parse_module(text)
        assert print_op(reparsed) == text

    def test_duplicate_hints_uniqued(self, module_and_builder):
        module, builder = module_and_builder
        a = arith.constant(builder, 1, ir.i32)
        b = arith.constant(builder, 2, ir.i32)
        a.name_hint = "x"
        b.name_hint = "x"
        text = print_op(module)
        assert "%x" in text and "%x_0" in text
        roundtrip(module)

    def test_full_equeue_program(self, module_and_builder):
        module, builder = module_and_builder
        eq = EQueueBuilder(builder)
        kernel = eq.create_proc("ARMr5", name="kernel")
        sram = eq.create_mem("SRAM", 64, ir.i32, banks=2, ports=2, name="sram")
        buf = eq.alloc(sram, [8], ir.i32, name="buf")
        start = eq.control_start()

        def body(bb, buf_arg):
            inner = EQueueBuilder(bb)
            data = inner.read(buf_arg)
            inner.write(data, buf_arg)
            return [data]

        done, out = eq.launch(start, kernel, args=[buf], body=body, label="work")
        eq.await_([done])
        text = roundtrip(module)
        assert "equeue.launch" in text
        assert "^bb0" in text
        assert "!equeue.event" in text

    def test_multi_result_ops(self, module_and_builder):
        module, builder = module_and_builder
        builder.create("test.pair", [], [ir.i32, ir.i32])
        roundtrip(module)

    def test_nested_regions(self, module_and_builder):
        module, builder = module_and_builder
        from repro.dialects import affine

        def outer(b, i):
            affine.for_loop(b, 0, 4, body=lambda bb, j: None)

        affine.for_loop(builder, 0, 8, 2, body=outer)
        text = roundtrip(module)
        assert text.count("affine.for") == 2

    def test_float_and_bool_attrs(self, module_and_builder):
        module, builder = module_and_builder
        builder.create(
            "test.attrs", [], [],
            {"f": 2.5, "flag": True, "items": [1, 2], "nested": {"a": "b"}},
        )
        roundtrip(module)

    def test_scientific_float(self, module_and_builder):
        module, builder = module_and_builder
        builder.create("test.attrs", [], [], {"tiny": 1e-07})
        text = roundtrip(module)
        assert "1e-07" in text

    def test_inf_nan_as_attribute_names(self, module_and_builder):
        """inf/nan lex as float literals in value position, but they (and
        identifiers merely starting with them) are legal attribute keys."""
        module, builder = module_and_builder
        builder.create(
            "test.attrs", [], [],
            {"inf": 1, "nan": "x", "infx": 2, "nano": True},
        )
        roundtrip(module)

    def test_non_finite_float_values(self, module_and_builder):
        module, builder = module_and_builder
        builder.create(
            "test.attrs", [], [],
            {"pos": float("inf"), "neg": float("-inf")},
        )
        roundtrip(module)


class TestTypeParsing:
    @pytest.mark.parametrize(
        "type_text",
        ["i32", "i1", "f32", "f64", "index", "none",
         "memref<4xi32>", "memref<2x3x4xf32>", "tensor<8xi32>",
         "memref<?x4xi32>", "!equeue.proc", "!equeue.event"],
    )
    def test_types_roundtrip(self, type_text):
        source = (
            "builtin.module() ({\n"
            f"  test.op() : () -> {type_text}\n"
            "}) : () -> ()\n"
        )
        # Result values must be named to be re-printed; wrap via %0 =.
        source = source.replace("test.op()", "%0 = test.op()")
        module = parse_module(source)
        assert print_op(module) == source


class TestParseErrors:
    def test_undefined_value(self):
        source = (
            "builtin.module() ({\n"
            "  test.use(%nope) : (i32) -> ()\n"
            "}) : () -> ()\n"
        )
        with pytest.raises(ParseError, match="undefined value"):
            parse_module(source)

    def test_operand_type_count_mismatch(self):
        source = (
            "builtin.module() ({\n"
            "  %0 = test.p() : () -> i32\n"
            "  test.use(%0) : (i32, i32) -> ()\n"
            "}) : () -> ()\n"
        )
        with pytest.raises(ParseError, match="operand"):
            parse_module(source)

    def test_unbalanced_angle_bracket(self):
        with pytest.raises(ParseError):
            parse_op("%0 = test.p() : () -> memref<4xi32")

    def test_garbage_input(self):
        with pytest.raises(ParseError):
            parse_module("@@@@")

    def test_top_level_must_be_module(self):
        with pytest.raises(ParseError, match="builtin.module"):
            parse_module("test.op() : () -> ()")

    def test_error_reports_line_numbers(self):
        source = (
            "builtin.module() ({\n"
            "  test.use(%missing) : (i32) -> ()\n"
            "}) : () -> ()\n"
        )
        with pytest.raises(ParseError, match="line 2"):
            parse_module(source)


class TestParseOp:
    def test_single_op(self):
        op = parse_op('%0 = arith.constant() {value = 5 : i32} : () -> i32')
        assert op.name == "arith.constant"
        assert op.get_attr("value") == 5
