"""Unit tests for the IR type system."""

import pytest

from repro.ir import (
    DYNAMIC,
    FloatType,
    FunctionType,
    IndexType,
    IntegerType,
    IRError,
    MemRefType,
    NoneType,
    TensorType,
    i1,
    i32,
    index,
)
from repro.ir.types import lookup_dialect_type, registered_dialect_types


class TestScalarTypes:
    def test_integer_str(self):
        assert str(IntegerType(32)) == "i32"
        assert str(IntegerType(1)) == "i1"

    def test_integer_equality_is_structural(self):
        assert IntegerType(32) == IntegerType(32)
        assert IntegerType(32) != IntegerType(64)
        assert hash(IntegerType(8)) == hash(IntegerType(8))

    def test_integer_rejects_nonpositive_width(self):
        with pytest.raises(IRError):
            IntegerType(0)
        with pytest.raises(IRError):
            IntegerType(-4)

    def test_float_widths(self):
        assert str(FloatType(32)) == "f32"
        assert str(FloatType(64)) == "f64"
        with pytest.raises(IRError):
            FloatType(24)

    def test_index_and_none(self):
        assert str(IndexType()) == "index"
        assert str(NoneType()) == "none"
        assert IndexType() == IndexType()

    def test_singletons_match_fresh_instances(self):
        assert i32 == IntegerType(32)
        assert i1 == IntegerType(1)
        assert index == IndexType()


class TestShapedTypes:
    def test_memref_str(self):
        t = MemRefType((4, 4), i32)
        assert str(t) == "memref<4x4xi32>"

    def test_tensor_str(self):
        t = TensorType((2, 3, 4), FloatType(32))
        assert str(t) == "tensor<2x3x4xf32>"

    def test_dynamic_dim_str(self):
        t = MemRefType((DYNAMIC, 8), i32)
        assert str(t) == "memref<?x8xi32>"

    def test_rank_and_elements(self):
        t = MemRefType((2, 3, 4), i32)
        assert t.rank == 3
        assert t.num_elements == 24
        assert t.has_static_shape

    def test_dynamic_shape_rejects_element_count(self):
        t = MemRefType((DYNAMIC,), i32)
        assert not t.has_static_shape
        with pytest.raises(IRError):
            _ = t.num_elements

    def test_scalar_shaped_type(self):
        t = TensorType((), i32)
        assert t.rank == 0
        assert t.num_elements == 1

    def test_negative_dim_rejected(self):
        with pytest.raises(IRError):
            MemRefType((-2,), i32)

    def test_memref_tensor_not_equal(self):
        assert MemRefType((4,), i32) != TensorType((4,), i32)


class TestFunctionType:
    def test_single_result_str(self):
        t = FunctionType((i32, i32), (i32,))
        assert str(t) == "(i32, i32) -> i32"

    def test_multi_result_str(self):
        t = FunctionType((i32,), (i32, index))
        assert str(t) == "(i32) -> (i32, index)"

    def test_empty(self):
        assert str(FunctionType((), ())) == "() -> ()"


class TestDialectTypes:
    def test_equeue_types_registered(self):
        registry = registered_dialect_types()
        for mnemonic in ("proc", "mem", "dma", "comp", "conn", "event"):
            assert f"equeue.{mnemonic}" in registry

    def test_lookup_and_str(self):
        cls = lookup_dialect_type("equeue.proc")
        assert str(cls()) == "!equeue.proc"

    def test_lookup_unknown_raises(self):
        with pytest.raises(IRError):
            lookup_dialect_type("nosuch.type")
