"""Unit tests for attributes and Python conversions."""

import pytest

from repro.ir import (
    ArrayAttr,
    BoolAttr,
    DictAttr,
    FloatAttr,
    IntegerAttr,
    IRError,
    StringAttr,
    TypeAttr,
    UnitAttr,
    attr_from_python,
    attr_to_python,
    i32,
)
from repro.ir.types import FloatType, IndexType


class TestScalarAttrs:
    def test_integer_attr_str(self):
        assert str(IntegerAttr(5, i32)) == "5 : i32"
        assert str(IntegerAttr(-3, i32)) == "-3 : i32"

    def test_integer_attr_default_type(self):
        attr = IntegerAttr(7)
        assert str(attr) == "7 : i64"

    def test_integer_attr_index_type(self):
        assert str(IntegerAttr(2, IndexType())) == "2 : index"

    def test_integer_attr_rejects_float_type(self):
        with pytest.raises(IRError):
            IntegerAttr(1, FloatType(32))

    def test_float_attr(self):
        attr = FloatAttr(1.5, FloatType(32))
        assert str(attr) == "1.5 : f32"

    def test_float_attr_rejects_integer_type(self):
        with pytest.raises(IRError):
            FloatAttr(1.0, i32)

    def test_bool_attr(self):
        assert str(BoolAttr(True)) == "true"
        assert str(BoolAttr(False)) == "false"

    def test_string_attr_escaping(self):
        attr = StringAttr('say "hi" \\ there')
        assert '\\"hi\\"' in str(attr)

    def test_unit_attr(self):
        assert str(UnitAttr()) == "unit"

    def test_type_attr(self):
        assert str(TypeAttr(i32)) == "i32"


class TestCompositeAttrs:
    def test_array_attr(self):
        attr = ArrayAttr((IntegerAttr(1, i32), IntegerAttr(2, i32)))
        assert str(attr) == "[1 : i32, 2 : i32]"
        assert len(attr) == 2
        assert attr[0] == IntegerAttr(1, i32)

    def test_array_attr_rejects_non_attrs(self):
        with pytest.raises(IRError):
            ArrayAttr((1, 2))

    def test_dict_attr_sorted_and_str(self):
        attr = DictAttr((("b", IntegerAttr(2)), ("a", IntegerAttr(1))))
        assert list(attr.as_dict()) == ["a", "b"]

    def test_dict_attr_equality_order_independent(self):
        a = DictAttr((("x", IntegerAttr(1)), ("y", IntegerAttr(2))))
        b = DictAttr((("y", IntegerAttr(2)), ("x", IntegerAttr(1))))
        assert a == b


class TestPythonConversion:
    @pytest.mark.parametrize(
        "value",
        [5, -2, 1.25, True, False, "hello", [1, 2, 3], {"a": 1, "b": "x"}],
    )
    def test_roundtrip(self, value):
        attr = attr_from_python(value)
        assert attr_to_python(attr) == value

    def test_bool_is_not_integer(self):
        assert isinstance(attr_from_python(True), BoolAttr)
        assert isinstance(attr_from_python(1), IntegerAttr)

    def test_type_passthrough(self):
        attr = attr_from_python(i32)
        assert isinstance(attr, TypeAttr)
        assert attr_to_python(attr) == i32

    def test_existing_attr_passthrough(self):
        attr = IntegerAttr(1, i32)
        assert attr_from_python(attr) is attr

    def test_unconvertible_raises(self):
        with pytest.raises(IRError):
            attr_from_python(object())

    def test_nested_structures(self):
        value = {"list": [1, "two", False], "n": 3}
        assert attr_to_python(attr_from_python(value)) == value
