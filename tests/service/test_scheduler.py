"""The job scheduler: request resolution, coalescing, batching, store
spill, and the service's core determinism guarantee — warm-store
responses are bit-identical to cold sweep results, with zero engine or
compile work on the warm path."""

from __future__ import annotations

import threading

import pytest

import repro.service.scheduler as scheduler_module
from repro.scenarios import (
    clear_scenario_caches,
    scenario_cache_stats,
    scenario_grid,
    scenario_names,
)
from repro.scenarios.sweep import run_scenario_sweep
from repro.service import JobRequest, JobScheduler, ResultStore
from repro.service.scheduler import RequestError


class TestJobRequest:
    def test_spec_and_config_dict_resolve_identically(self):
        by_spec = JobRequest.make("gemm:m=8,k=8")
        by_dict = JobRequest.make("gemm", config={"m": 8, "k": 8})
        assert by_spec == by_dict
        assert by_spec.key() == by_dict.key()

    def test_defaults_are_materialized(self):
        request = JobRequest.make("fir")
        config = dict(request.config)
        assert config["taps"] == 32  # full resolved config, not overrides
        explicit = JobRequest.make("fir", config={"taps": 32})
        assert explicit.key() == request.key()

    def test_distinct_requests_get_distinct_keys(self):
        base = JobRequest.make("fir")
        assert JobRequest.make("fir", seed=1).key() != base.key()
        assert JobRequest.make("fir", config={"taps": 16}).key() != base.key()
        assert (
            JobRequest.make("fir", options={"scheduler": "heap"}).key()
            != base.key()
        )
        assert JobRequest.make("fir", check=False).key() != base.key()

    def test_unknown_scenario_and_option_rejected(self):
        with pytest.raises(RequestError, match="valid scenarios"):
            JobRequest.make("nonesuch")
        with pytest.raises(RequestError, match="valid options"):
            JobRequest.make("fir", options={"trace": True})
        with pytest.raises(RequestError, match="no config key"):
            JobRequest.make("fir", config={"bogus": 1})

    def test_non_scalar_values_rejected(self):
        """JSON lists/objects must be refused at the boundary — they
        would otherwise freeze into unhashable, unsimulatable requests."""
        with pytest.raises(RequestError, match="must be a scalar"):
            JobRequest.make("fir", config={"taps": [1, 2]})
        with pytest.raises(RequestError, match="must be a scalar"):
            JobRequest.make("fir", options={"max_cycles": [100]})

    def test_code_version_is_part_of_the_key(self, monkeypatch):
        before = JobRequest.make("fir").key()
        monkeypatch.setenv("EQUEUE_CODE_VERSION", "v-next")
        assert JobRequest.make("fir").key() != before


class TestScheduling:
    def test_cold_then_store_hit(self, tmp_path):
        store = ResultStore(tmp_path)
        scheduler = JobScheduler(store=store)
        request = JobRequest.make("fir")
        job = scheduler.submit(request)
        assert job.state == "queued" and not job.done
        assert scheduler.run_pending() == 1
        assert job.done and job.source == "simulated"
        record = job.result()
        assert record["cycles"] > 0
        assert record["checked"]["cycles"] == record["cycles"]
        # A fresh submit of the same request never queues: store hit.
        warm = scheduler.submit(request)
        assert warm.done and warm.source == "store"
        assert warm.record == record
        assert scheduler.stats.store_hits == 1
        assert scheduler.stats.simulated == 1

    def test_inflight_coalescing(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        request = JobRequest.make("mesh")
        first = scheduler.submit(request)
        second = scheduler.submit(request)
        assert second is first
        assert first.waiters == 2
        assert scheduler.stats.coalesced == 1
        scheduler.run_pending()
        assert first.done
        assert scheduler.stats.simulated == 1

    def test_batches_group_by_engine_options(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        scheduler.submit(JobRequest.make("fir"))
        scheduler.submit(JobRequest.make("fir", seed=1))
        scheduler.submit(JobRequest.make("fir", options={"scheduler": "heap"}))
        assert scheduler.run_pending() == 3
        assert scheduler.stats.batches == 2  # {} x2 and {"heap"} x1

    def test_failing_job_reports_error_not_crash(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        # max_cycles=1 truncates the FIR run mid-launch, which the
        # engine reports as an error — the job must carry it, not crash
        # the batch.
        bad = scheduler.submit(
            JobRequest.make("fir", options={"max_cycles": 1})
        )
        good = scheduler.submit(JobRequest.make("fir"))
        scheduler.run_pending()
        assert bad.state == "error"
        with pytest.raises(RuntimeError, match="failed"):
            bad.result()
        assert good.done and good.record["cycles"] > 0
        assert scheduler.stats.errors == 1
        # Errors are not persisted: nothing claims that key in the store.
        assert scheduler.store.get(bad.key) is None

    def test_truncated_uncheck_run_is_served(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        job = scheduler.submit(
            JobRequest.make("gemm", options={"max_cycles": 5}, check=False)
        )
        scheduler.run_pending()
        record = job.result()
        assert record["truncated"] is True
        assert record["checked"] is None

    def test_store_put_failure_never_wedges_the_job(self, tmp_path):
        """A failing spill (disk full, root removed) is counted; the job
        still completes from its in-memory record and waiters wake."""
        scheduler = JobScheduler(store=ResultStore(tmp_path))

        def broken_put(key, record):
            raise OSError("no space left on device")

        scheduler.store.put = broken_put
        job = scheduler.submit(JobRequest.make("fir"))
        scheduler.run_pending()
        assert job.done and job.source == "simulated"
        assert job.result()["cycles"] > 0
        assert scheduler.stats.store_put_failures == 1

    def test_completed_jobs_pruned_beyond_cap(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path), max_jobs=2)
        jobs = []
        for seed in range(3):
            jobs.append(scheduler.submit(JobRequest.make("mesh", seed=seed)))
            scheduler.run_pending()
        assert scheduler.stats.jobs_pruned == 1
        assert jobs[0].id not in scheduler._jobs  # oldest done job dropped
        assert scheduler.job(jobs[2].id) is jobs[2]
        # A pruned id is not a 404: it resolves through its terminal
        # record to the stored result, bit-identical to the original.
        resurrected = scheduler.job(jobs[0].id)
        assert resurrected is not None and resurrected is not jobs[0]
        assert resurrected.done and resurrected.source == "store"
        assert resurrected.result() == jobs[0].result()
        assert scheduler.stats.resurrected == 1
        # The pruned job's record is still one store hit away.
        again = scheduler.submit(JobRequest.make("mesh", seed=0))
        assert again.done and again.source == "store"

    def test_background_worker_drains(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        scheduler.start()
        try:
            job = scheduler.submit(JobRequest.make("fir"))
            assert job.wait(timeout=60)
            assert job.result()["cycles"] > 0
        finally:
            scheduler.stop()

    def test_concurrent_submitters_share_one_record(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        request = JobRequest.make("gemm")
        records = []
        lock = threading.Lock()

        def submit():
            job = scheduler.submit(request)
            job.wait(timeout=60)
            with lock:
                records.append(job.result())

        threads = [threading.Thread(target=submit) for _ in range(4)]
        for thread in threads:
            thread.start()
        scheduler.start()
        try:
            for thread in threads:
                thread.join(timeout=60)
        finally:
            scheduler.stop()
        assert len(records) == 4
        assert all(record == records[0] for record in records)
        # At most one simulation ran, no matter how submits interleaved
        # with the worker (coalesced or store-served, never recomputed).
        assert scheduler.stats.simulated == 1


class TestRobustness:
    """Deadlines, bisection, admission control, worker survival — the
    hardened tier, driven by the deterministic fault plane."""

    def test_poisoned_batch_bisects_to_the_culprit(self, tmp_path):
        from repro.service import faults

        plan = faults.FaultPlan(
            [faults.Fault("job.evaluate", "poison", match="seed=2", count=-1)]
        )
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        with faults.injected(plan):
            jobs = [
                scheduler.submit(JobRequest.make("gemm", seed=seed))
                for seed in range(4)
            ]
            scheduler.run_pending()
        assert [job.state for job in jobs] == ["done", "done", "error", "done"]
        assert "crashed" in jobs[2].error
        assert scheduler.stats.poison_isolated == 1
        assert scheduler.stats.bisections >= 1
        # Batch-mates completed with real records, spilled to the store.
        for job in (jobs[0], jobs[1], jobs[3]):
            assert job.result()["cycles"] > 0
            assert scheduler.store.get(job.key) == job.record
        # The poisoned key claims nothing: a healthy retry simulates it.
        assert scheduler.store.get(jobs[2].key) is None

    def test_transient_pool_error_still_completes_every_job(self, tmp_path):
        from repro.service import faults

        plan = faults.FaultPlan([faults.Fault("batch.map", "pool-error")])
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        with faults.injected(plan):
            jobs = [
                scheduler.submit(JobRequest.make("gemm", seed=seed))
                for seed in range(3)
            ]
            scheduler.run_pending()
        # One transient machinery failure: bisection re-runs contain it.
        assert all(job.done for job in jobs)
        assert sum(job.state == "done" for job in jobs) >= 2

    def test_deadline_fails_job_not_worker(self, tmp_path):
        from repro.service import faults

        plan = faults.FaultPlan(
            [faults.Fault("job.evaluate", "slow", delay_s=0.6)]
        )
        scheduler = JobScheduler(
            store=ResultStore(tmp_path), deadline_s=0.15, watchdog_poll_s=0.02
        )
        scheduler.start()
        try:
            with faults.injected(plan):
                slow = scheduler.submit(JobRequest.make("fir"))
                assert slow.wait(timeout=10)
            assert slow.state == "error"
            assert "deadline" in slow.error
            assert scheduler.stats.deadline_failures == 1
            # The worker survived and serves the next job normally.
            after = scheduler.submit(JobRequest.make("fir", seed=1))
            assert after.wait(timeout=30)
            assert after.result()["cycles"] > 0
            assert scheduler.worker_health()["worker_alive"]
        finally:
            scheduler.stop(timeout=10)

    def test_per_job_deadline_overrides_default(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path), deadline_s=0.2)
        job = scheduler.submit(JobRequest.make("fir"), deadline_s=9.0)
        assert job.deadline_s == 9.0
        scheduler.run_pending()
        assert job.state == "done"

    def test_queue_full_rejects_cleanly(self, tmp_path):
        from repro.service.scheduler import QueueFullError

        scheduler = JobScheduler(store=ResultStore(tmp_path), max_queue=2)
        scheduler.submit(JobRequest.make("fir", seed=0))
        scheduler.submit(JobRequest.make("fir", seed=1))
        with pytest.raises(QueueFullError, match="queue full"):
            scheduler.submit(JobRequest.make("fir", seed=2))
        assert scheduler.stats.rejected_queue_full == 1
        # Free admissions are never refused: a coalesce joins its twin...
        twin = scheduler.submit(JobRequest.make("fir", seed=0))
        assert twin.waiters == 2
        # ...and after the queue drains, a store hit answers instantly.
        scheduler.run_pending()
        hit = scheduler.submit(JobRequest.make("fir", seed=1))
        assert hit.done and hit.source == "store"

    def test_draining_refuses_new_work_completes_old(self, tmp_path):
        from repro.service.scheduler import DrainingError

        scheduler = JobScheduler(store=ResultStore(tmp_path))
        admitted = scheduler.submit(JobRequest.make("fir"))
        scheduler.drain()
        with pytest.raises(DrainingError, match="draining"):
            scheduler.submit(JobRequest.make("fir", seed=1))
        assert scheduler.stats.rejected_draining == 1
        scheduler.run_pending()
        assert admitted.result()["cycles"] > 0
        # Read-only paths still answer while draining.
        hit = scheduler.submit(JobRequest.make("fir"))
        assert hit.done and hit.source == "store"

    def test_worker_death_restarts_in_place_and_surfaces(self, tmp_path):
        from repro.service import faults

        plan = faults.FaultPlan([faults.Fault("scheduler.worker", "die")])
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        scheduler.start()
        try:
            with faults.injected(plan):
                job = scheduler.submit(JobRequest.make("fir"))
                assert job.wait(timeout=30)
            assert job.result()["cycles"] > 0
            health = scheduler.worker_health()
            assert health["worker_alive"]
            assert health["worker_restarts"] == 1
            assert "injected worker death" in health["last_error"]
            assert health["last_error_at"] is not None
        finally:
            scheduler.stop(timeout=10)

    def test_late_record_cannot_overwrite_deadline_failure(self, tmp_path):
        """First-writer-wins: the watchdog fails the job, the engine's
        eventual record must not resurrect it."""
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        job = scheduler.submit(JobRequest.make("fir"))
        assert job._fail("deadline exceeded (simulated)") is True
        assert job._complete({"cycles": 1}, source="simulated") is False
        assert job.state == "error"
        assert job.record is None


# ---------------------------------------------------------------------------
# The determinism + zero-work acceptance criteria
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", scenario_names())
def test_warm_store_equals_cold_sweep(name, tmp_path, monkeypatch):
    """For every registered scenario: the warm-store service response is
    bit-identical to the cold ``run_scenario_sweep(jobs=1)`` reference,
    and the warm path provably runs no simulation and builds no program."""
    clear_scenario_caches()
    [cold] = run_scenario_sweep(
        scenario_grid(name, axes={}), jobs=1, seed=0, check=True
    )

    store = ResultStore(tmp_path)
    warm_up = JobScheduler(store=store)
    request = JobRequest.make(name)
    first = warm_up.submit(request)
    warm_up.run_pending()
    record = first.result()

    # The service record matches the cold sweep reference exactly.
    assert record["cycles"] == cold.cycles
    assert record["summary"]["scheduler_events"] == cold.scheduler_events
    assert record["summary"]["launches_executed"] == cold.launches_executed
    assert record["checked"] == cold.checked
    assert record["truncated"] is False

    # Warm path: a fresh scheduler over the same store (a restarted
    # server, effectively), with the execution path booby-trapped — any
    # simulation or program build would fail the test.
    warm = JobScheduler(store=ResultStore(tmp_path))

    def boom(*args, **kwargs):
        raise AssertionError("warm path invoked the simulation engine")

    monkeypatch.setattr(scheduler_module, "evaluate_request", boom)
    monkeypatch.setattr("repro.scenarios.sweep.simulate", boom)
    built_before = scenario_cache_stats().programs_built
    job = warm.submit(request)
    assert job.done and job.source == "store"
    assert job.record == record  # bit-identical stats
    assert job.record["summary"] == record["summary"]
    assert scenario_cache_stats().programs_built == built_before
    assert warm.stats.simulated == 0 and warm.stats.store_hits == 1


def test_code_version_bump_invalidates_store(tmp_path, monkeypatch):
    scheduler = JobScheduler(store=ResultStore(tmp_path))
    request = JobRequest.make("fir")
    job = scheduler.submit(request)
    scheduler.run_pending()
    assert job.done
    # Same request under a bumped code version: the old record is
    # unreachable (new key), so the job queues for fresh simulation.
    monkeypatch.setenv("EQUEUE_CODE_VERSION", "v-next")
    bumped = scheduler.submit(JobRequest.make("fir"))
    assert not bumped.done and bumped.state == "queued"
    assert bumped.key != job.key


# ---------------------------------------------------------------------------
# Execution-mode store safety
# ---------------------------------------------------------------------------


class TestExecutionModeStoreSafety:
    """The resolved mode participates in the store key: plan and codegen
    records never cross, while alias spellings coalesce onto one key."""

    def test_alias_spellings_share_one_key(self):
        base = JobRequest.make("fir")
        assert JobRequest.make("fir", options={"mode": "plan"}) == base
        assert JobRequest.make("fir", options={"compile_plans": True}) == base
        assert base.options == ()  # canonical: default mode is omitted
        interpret = JobRequest.make("fir", options={"mode": "interpret"})
        aliased = JobRequest.make("fir", options={"compile_plans": False})
        assert interpret.key() == aliased.key()
        assert dict(interpret.options) == {"mode": "interpret"}

    def test_mode_conflicts_and_bad_values_rejected(self):
        with pytest.raises(RequestError, match="compile_plans"):
            JobRequest.make(
                "fir", options={"mode": "codegen", "compile_plans": False}
            )
        with pytest.raises(RequestError, match="valid modes"):
            JobRequest.make("fir", options={"mode": "turbo"})

    def test_each_mode_gets_its_own_key(self):
        keys = {
            mode: JobRequest.make("fir", options={"mode": mode}).key()
            for mode in ("interpret", "plan", "codegen")
        }
        assert len(set(keys.values())) == 3

    def test_warm_hits_never_cross_modes(self, tmp_path, monkeypatch):
        """A record persisted under mode=plan must never answer a
        mode=codegen request (or vice versa); true same-mode hits serve
        with provably zero engine work."""
        clear_scenario_caches()
        plan_request = JobRequest.make("fir")
        codegen_request = JobRequest.make("fir", options={"mode": "codegen"})

        cold = JobScheduler(store=ResultStore(tmp_path))
        plan_job = cold.submit(plan_request)
        cold.run_pending()
        plan_record = plan_job.result()
        assert plan_record["summary"]["execution_mode"] == "plan"

        # A fresh scheduler over the warm store: the codegen request
        # must queue and simulate, not hit the plan record.
        cross = JobScheduler(store=ResultStore(tmp_path))
        codegen_job = cross.submit(codegen_request)
        assert not codegen_job.done
        cross.run_pending()
        assert codegen_job.source == "simulated"
        assert cross.stats.store_hits == 0
        codegen_record = codegen_job.result()
        assert codegen_record["summary"]["execution_mode"] == "codegen"
        assert codegen_record["summary"]["blocks_codegenned"] > 0
        # The modes are bit-identical where it counts.
        assert codegen_record["cycles"] == plan_record["cycles"]
        assert (
            codegen_record["summary"]["scheduler_events"]
            == plan_record["summary"]["scheduler_events"]
        )
        assert codegen_record["checked"] == plan_record["checked"]

        # True per-mode hits, booby-trapped: any simulation fails.
        warm = JobScheduler(store=ResultStore(tmp_path))

        def boom(*args, **kwargs):
            raise AssertionError("warm path invoked the simulation engine")

        monkeypatch.setattr(scheduler_module, "evaluate_request", boom)
        monkeypatch.setattr("repro.scenarios.sweep.simulate", boom)
        for request, record in (
            (plan_request, plan_record),
            (codegen_request, codegen_record),
        ):
            job = warm.submit(request)
            assert job.done and job.source == "store"
            assert job.record == record
        # Deprecated alias spellings hit the same records.
        aliased = warm.submit(
            JobRequest.make("fir", options={"compile_plans": True})
        )
        assert aliased.done and aliased.source == "store"
        assert aliased.record == plan_record
        assert warm.stats.simulated == 0
        assert warm.stats.store_hits == 3

    def test_stats_report_submissions_by_mode(self, tmp_path):
        scheduler = JobScheduler(store=ResultStore(tmp_path))
        scheduler.submit(JobRequest.make("fir"))
        scheduler.submit(JobRequest.make("fir", options={"mode": "codegen"}))
        scheduler.submit(
            JobRequest.make("fir", options={"compile_plans": False}, seed=1)
        )
        scheduler.run_pending()
        by_mode = scheduler.stats_dict()["submitted_by_mode"]
        assert by_mode == {"plan": 1, "codegen": 1, "interpret": 1}
