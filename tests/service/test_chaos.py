"""The chaos campaign: seeded fault plans against a live service.

The service's robustness contract is **never wrong, only unavailable**:
under injected engine crashes, store corruption, I/O errors, stalls, and
worker deaths, every *completed* response must be bit-identical to the
fault-free cold reference, every error must be a clean JSON message (no
tracebacks over the wire), and the server must be alive — and still
correct — after every plan.

Each plan is generated from a seed (``FaultPlan.generate``), so the
whole campaign replays exactly; a failing seed's plan (and its fired
log) is dumped to ``$EQUEUE_CHAOS_DIR`` for CI to upload.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.analysis.export import record_line
from repro.scenarios import scenario_grid
from repro.scenarios.sweep import run_scenario_sweep
from repro.service import JobRequest, JobScheduler, ServiceClient, ServiceError
from repro.service import faults
from repro.service.server import make_server

#: The deterministic request mix every plan runs (spec, config, seed) —
#: fast scenarios only, so a 24-plan campaign stays tier-1 viable.
REQUESTS = [
    ("gemm", None, 0),
    ("gemm", None, 1),
    ("gemm", None, 2),
    ("pipeline", None, 0),
    ("pipeline", None, 1),
    ("mesh", {"rows": 2, "cols": 2}, 0),
]

#: Contexts a generated poison fault may target (``job.evaluate``'s
#: context string is ``"<scenario>:seed=<seed>"``).
POISON_CONTEXTS = sorted(
    {f"{spec.split(':')[0]}:seed={seed}" for spec, _, seed in REQUESTS}
)

#: Injected stalls exceed the service deadline, so every stall becomes a
#: clean deadline failure instead of a slow pass.
DEADLINE_S = 0.2
SLOW_DELAY_S = 0.35

CHAOS_SEEDS = range(24)


#: Summary fields that measure the *host* (wall time, per-process
#: compile-cache hit/miss split, loops vectorized at compile time), not
#: the simulation.  Everything else — cycles, event counts, memory
#: traffic, the checked model — must match bit for bit.
HOST_FIELDS = (
    "execution_time_s",
    "plans_compiled",
    "plan_cache_hits",
    "vector_loops",
)


def canonical(record):
    """The bit-comparison form of a record: its canonical JSON line with
    the host-measurement fields zeroed."""
    record = json.loads(record_line(record))
    summary = record.get("summary", {})
    for field in HOST_FIELDS:
        if field in summary:
            summary[field] = 0
    return record_line(record)


@pytest.fixture(scope="module")
def references():
    """Fault-free reference records, canonical-JSON keyed by request —
    computed once through a clean scheduler and anchored against the
    ``run_scenario_sweep(jobs=1)`` cold path."""
    faults.clear()
    scheduler = JobScheduler(store=None)
    jobs = {}
    for spec, config, seed in REQUESTS:
        request = JobRequest.make(spec, config=config, seed=seed)
        jobs[(spec, seed)] = scheduler.submit(request)
    scheduler.run_pending()
    lines = {}
    for key, job in jobs.items():
        lines[key] = canonical(job.result())
    # Anchor: the service record IS the cold sweep result, bit for bit
    # where the sweep reports (cycles, summary, checked).
    [cold] = run_scenario_sweep(
        scenario_grid("gemm", axes={}), jobs=1, seed=0, check=True
    )
    anchored = json.loads(lines[("gemm", 0)])
    assert anchored["cycles"] == cold.cycles
    assert anchored["summary"]["scheduler_events"] == cold.scheduler_events
    assert anchored["checked"] == cold.checked
    return lines


@contextmanager
def chaos_server(tmp_path):
    server = make_server(
        host="127.0.0.1",
        port=0,
        store_path=str(tmp_path / "store"),
        max_queue=64,
        deadline_s=DEADLINE_S,
    )
    server.scheduler.watchdog_poll_s = 0.02
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(
        f"http://{host}:{port}", timeout=30.0, retries=3, backoff_s=0.05
    )
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop(timeout=10)
        server.server_close()
        thread.join(timeout=30)


def _dump_failing_plan(plan, error):
    """Persist a failing plan (and its fired log) for CI artifact upload."""
    directory = os.environ.get("EQUEUE_CHAOS_DIR")
    if not directory:
        return
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    payload = {
        **plan.to_dict(),
        "fired": [list(entry) for entry in plan.fired],
        "failure": str(error),
    }
    (out / f"{plan.name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )


def _assert_clean(message):
    assert message, "errors must carry a message"
    assert "Traceback" not in message, f"traceback over the wire: {message}"


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_seeded_fault_plan_never_wrong_only_unavailable(
    seed, tmp_path, references
):
    plan = faults.FaultPlan.generate(
        seed,
        faults=3,
        slow_delay_s=SLOW_DELAY_S,
        poison_contexts=POISON_CONTEXTS,
    )
    try:
        _run_plan(plan, tmp_path, references)
    except BaseException as error:
        _dump_failing_plan(plan, error)
        raise


def _run_plan(plan, tmp_path, references):
    completed = 0
    with chaos_server(tmp_path) as (client, server):
        with faults.injected(plan):
            # Two passes over the mix: the second pass rides coalescing
            # and warm store reads straight through the injected faults.
            for attempt in range(2):
                for spec, config, seed in REQUESTS:
                    try:
                        job = client.run(
                            spec, config=config, seed=seed, wait=20.0
                        )
                    except ServiceError as error:
                        _assert_clean(str(error))
                        continue
                    assert job["state"] == "done"
                    line = canonical(job["record"])
                    assert line == references[(spec.split(":")[0], seed)], (
                        f"WRONG RESPONSE for {spec} seed={seed} "
                        f"(attempt {attempt})"
                    )
                    completed += 1
        # Faults disarmed: the survivor must be alive AND still correct.
        health = client.healthz()
        assert health["status"] in ("ok", "degraded")
        if health["last_error"] is not None:
            # Internal diagnostics may carry tracebacks; the wire other
            # than this operator surface never does.
            assert "injected" in health["last_error"] or health["last_error"]
        job = client.run("gemm", seed=0, wait=30.0)
        assert canonical(job["record"]) == references[("gemm", 0)]
        stats = client.stats()
        assert stats["store"]["quarantined"] >= 0  # counters intact
    assert completed >= 1 or plan.fired, (
        "a plan that never fired must complete every request"
    )


def test_overload_degrades_to_clean_429_503_only(tmp_path, references):
    """A hammered, tightly-bounded server: every response is either a
    correct completion or a clean 429/503 — nothing else, nothing wrong."""
    faults.clear()
    server = make_server(
        host="127.0.0.1",
        port=0,
        store_path=str(tmp_path / "store"),
        max_queue=2,
        rate_limit=50.0,
        rate_burst=4,
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0, retries=1)
    outcomes = {"done": 0, 429: 0, 503: 0}
    try:
        for burst in range(8):
            for spec, config, seed in REQUESTS:
                try:
                    job = client.submit(
                        spec, config=config, seed=seed, wait=5.0
                    )
                except ServiceError as error:
                    _assert_clean(str(error))
                    assert error.status in (429, 503), (
                        f"overload must be 429/503, got {error.status}: "
                        f"{error}"
                    )
                    outcomes[error.status] += 1
                    continue
                if job["state"] == "done":
                    line = canonical(job["record"])
                    assert line == references[(spec.split(":")[0], seed)]
                    outcomes["done"] += 1
        assert outcomes["done"] >= 1, "some requests must get through"
        assert outcomes[429] + outcomes[503] >= 1, (
            f"8x the mix against queue=2/burst=4 must overload: {outcomes}"
        )
        assert client.healthz()["status"] == "ok"
    finally:
        server.shutdown()
        server.scheduler.stop(timeout=10)
        server.server_close()
        thread.join(timeout=30)


def test_failing_plan_dump_round_trips(tmp_path, monkeypatch):
    """The CI artifact is a replayable plan: dump, reload, same plan."""
    monkeypatch.setenv("EQUEUE_CHAOS_DIR", str(tmp_path / "artifacts"))
    plan = faults.FaultPlan.generate(5, poison_contexts=POISON_CONTEXTS)
    plan.fire("store.get", context="k" * 64, payload="text")
    _dump_failing_plan(plan, AssertionError("wrong response"))
    [artifact] = (tmp_path / "artifacts").glob("*.json")
    payload = json.loads(artifact.read_text(encoding="utf-8"))
    assert payload["failure"] == "wrong response"
    reloaded = faults.FaultPlan.from_dict(payload)
    assert reloaded.to_dict() == plan.to_dict()
