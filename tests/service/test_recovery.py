"""Crash recovery end to end: the write-ahead admission log replayed
across restarts, the supervised server, and the acceptance choreography
— ``kill -9`` a server holding queued jobs, an in-flight job, and a
half-finished sweep, restart it from the same ``--state-dir``, and
every issued job id must resolve **bit-identical** to an uncrashed
reference run (modulo host-measurement fields), with zero engine work
for anything that reached the store before the crash."""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.analysis.export import record_line
from repro.service import (
    Fault,
    FaultPlan,
    JobRequest,
    JobScheduler,
    ResultStore,
    ServiceClient,
    ServiceError,
    Supervisor,
    injected,
)
from repro.service.scheduler import request_store_key
from repro.service.server import FAULT_PLAN_ENV, make_server
from repro.service.wal import AdmissionWAL, load_wal

#: Summary fields that measure the *host*, not the simulation (same
#: list the chaos suite pins): everything else must match bit for bit.
HOST_FIELDS = (
    "execution_time_s",
    "plans_compiled",
    "plan_cache_hits",
    "vector_loops",
)


def canonical(record):
    """A record's bit-comparison form: canonical JSON line with host
    fields zeroed — top level and inside each sweep point."""
    record = json.loads(record_line(record))

    def zero(rec):
        summary = rec.get("summary") or {}
        for field in HOST_FIELDS:
            if field in summary:
                summary[field] = 0

    zero(record)
    for point in record.get("points") or []:
        zero(point)
    return record_line(record)


@contextmanager
def durable_service(state_dir, **kwargs):
    """An in-thread server in durable (``state_dir``) mode."""
    server = make_server(
        host="127.0.0.1", port=0, state_dir=str(state_dir), **kwargs
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


class TestInProcessRecovery:
    """The WAL replay path, driven without processes: deterministic,
    fast, and it pins the exact replay semantics."""

    def _stack(self, state):
        wal = AdmissionWAL(state / "admission.wal")
        scheduler = JobScheduler(store=ResultStore(state / "store"), wal=wal)
        return scheduler

    def test_requeued_jobs_keep_ids_and_results(self, tmp_path):
        state = tmp_path / "state"
        crashed = self._stack(state)
        crashed.recover()
        a = crashed.submit(JobRequest.make("fir", seed=1))
        b = crashed.submit(JobRequest.make("fir", seed=2))
        assert [a.id, b.id] == ["job-000001", "job-000002"]
        # kill -9 stand-in: the admitted jobs never ran; all in-memory
        # state is simply abandoned and a fresh stack reopens the dir.
        recovered = self._stack(state)
        summary = recovered.recover()
        assert summary["requeued"] == 2
        replay_a = recovered.job("job-000001")
        replay_b = recovered.job("job-000002")
        assert replay_a.state == "queued" and replay_b.state == "queued"
        recovered.run_pending()
        assert replay_a.done and replay_b.done
        # Bit-identical to an uncrashed run of the same requests.
        clean = JobScheduler(store=None)
        clean_a = clean.submit(JobRequest.make("fir", seed=1))
        clean_b = clean.submit(JobRequest.make("fir", seed=2))
        clean.run_pending()
        assert canonical(replay_a.record) == canonical(clean_a.record)
        assert canonical(replay_b.record) == canonical(clean_b.record)
        # Fresh ids continue past the recovered counter — no collisions.
        c = recovered.submit(JobRequest.make("fir", seed=3))
        assert c.id == "job-000003"

    def test_store_hit_replay_does_zero_engine_work(self, tmp_path):
        state = tmp_path / "state"
        request = JobRequest.make("fir")
        key = request_store_key(request)
        # The record reached the store, but the crash beat the terminal
        # append: the WAL holds only the admission.
        reference = JobScheduler(store=ResultStore(state / "store"))
        ref_job = reference.submit(request)
        reference.run_pending()
        with AdmissionWAL(state / "admission.wal") as wal:
            wal.append_admitted("job-000001", key=key, request=request.to_dict())
        recovered = self._stack(state)
        summary = recovered.recover()
        assert summary["store_hits"] == 1 and summary["requeued"] == 0
        job = recovered.job("job-000001")
        assert job.done and job.source == "store"
        assert job.record == ref_job.record
        assert recovered.stats.simulated == 0  # zero engine work
        assert recovered.stats.recovered_store_hits == 1
        # Recovery appended the make-up terminal record.
        terminal = load_wal(state / "admission.wal").terminal
        assert terminal["job-000001"]["status"] == "done"

    def test_unvalidatable_request_fails_cleanly(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        with AdmissionWAL(state / "admission.wal") as wal:
            wal.append_admitted(
                "job-000007",
                key="stale",
                request={"scenario": "no-such-scenario-xyz"},
            )
        recovered = self._stack(state)
        summary = recovered.recover()
        assert summary["failed"] == 1
        job = recovered.job("job-000007")
        assert job.state == "error"
        assert "recovery failed" in job.error

    def test_terminal_ids_resolve_after_restart(self, tmp_path):
        state = tmp_path / "state"
        first = self._stack(state)
        first.recover()
        done = first.submit(JobRequest.make("fir"))
        first.run_pending()
        assert done.done
        second = self._stack(state)
        summary = second.recover()
        assert summary["terminal"] == 1 and summary["requeued"] == 0
        resolved = second.job(done.id)
        assert resolved is not None and resolved.done
        assert resolved.source == "store"
        assert resolved.record == done.record
        assert second.stats.resurrected == 1
        assert second.stats.simulated == 0


class TestDurableServiceHTTP:
    def test_wal_append_failure_is_a_503_not_an_admission(self, tmp_path):
        with durable_service(tmp_path / "state") as (client, server):
            raw = ServiceClient(client.base_url, timeout=30.0, retries=1)
            plan = FaultPlan(
                [Fault(site="wal.append", action="io-error", count=1)]
            )
            with injected(plan):
                with pytest.raises(ServiceError) as info:
                    raw.submit("fir")
            assert info.value.status == 503
            assert "admission log" in str(info.value)
            # Nothing was admitted: no job, no id, no queue entry.
            stats = client.stats()
            assert stats["wal_append_failures"] == 1
            assert stats["jobs"] == 0 and stats["queued"] == 0
            # The default client's retry loop rides the blip out.
            job = client.run("fir", wait=120.0)
            assert job["state"] == "done"

    def test_restart_resolves_completed_ids(self, tmp_path):
        state = tmp_path / "state"
        with durable_service(state) as (client, _):
            job = client.run("fir", wait=120.0)
        with durable_service(state) as (client, server):
            assert server.recovery["terminal"] == 1
            again = client.job(job["id"])
            assert again["state"] == "done"
            assert canonical(again["record"]) == canonical(job["record"])
            assert client.stats()["simulated"] == 0


def _spawn_server(args, env_extra=None):
    """A real ``equeue-serve`` subprocess; returns (proc, base_url,
    lines) with ``lines`` growing in the background."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    if env_extra:
        env.update(env_extra)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.server", *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    lines = []
    url = None
    for line in proc.stdout:
        lines.append(line)
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            break
    if url is None:
        proc.wait(timeout=10)
        raise AssertionError(
            "server never announced its port:\n" + "".join(lines)
        )

    def drain():
        for line in proc.stdout:
            lines.append(line)

    threading.Thread(target=drain, daemon=True).start()
    return proc, url, lines


def _stop(proc):
    if proc.poll() is None:
        proc.kill()
        proc.wait(timeout=30)


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


#: The acceptance workload, in submission order (ids are deterministic:
#: job-000001..job-000004).  The sweep samples 6 gemm points; the kill
#: plan fires on the 5th point delivery, so 4 points are checkpointed.
SWEEP_SAMPLE = 6
KILLED_POINT = 4  # 0-based delivery index the kill lands on


def _submit_workload(client, wait_all: bool):
    """Submit the acceptance workload; returns the four job ids."""
    done = client.run("mesh:rows=2,cols=2", wait=300.0)
    sweep = client.submit_sweep("gemm:k=32", sample=SWEEP_SAMPLE)
    # Wait until the sweep is genuinely executing (points_total set),
    # so the singles below are *queued behind it* when the kill lands.
    deadline = time.monotonic() + 120
    while True:
        progress = client.job(sweep["id"]).get("progress") or {}
        if progress.get("points_total") is not None:
            break
        if time.monotonic() > deadline:  # pragma: no cover - hang guard
            raise AssertionError("sweep never started executing")
        time.sleep(0.02)
    queued_a = client.submit("fir", seed=1)
    queued_b = client.submit("fir", seed=2)
    ids = [done["id"], sweep["id"], queued_a["id"], queued_b["id"]]
    assert ids == [f"job-{n:06d}" for n in range(1, 5)]
    if wait_all:
        for job_id in ids[1:]:
            client.result(job_id, wait=300.0)
    return ids


class TestKillNineRecovery:
    """The acceptance test: SIGKILL mid-sweep with queued + in-flight
    work, restart from the same state dir, compare against an uncrashed
    reference run."""

    def test_every_id_resolves_bit_identical_after_kill_9(self, tmp_path):
        # -- the uncrashed reference -----------------------------------
        ref_state = tmp_path / "reference"
        proc, url, _ = _spawn_server(
            ["--port", "0", "--state-dir", str(ref_state)]
        )
        try:
            client = ServiceClient(url, timeout=120.0)
            ids = _submit_workload(client, wait_all=True)
            reference = {
                job_id: client.result(job_id, wait=300.0) for job_id in ids
            }
        finally:
            _stop(proc)

        # -- the crashed run -------------------------------------------
        state = tmp_path / "state"
        # Two faults on the sweep-point seam, checked in order: the
        # kill arms on the Nth matching delivery; until then the slow
        # fault stalls every delivery, holding the crash window open so
        # the singles below are deterministically still queued when the
        # SIGKILL lands (simulation points run in milliseconds).
        plan = FaultPlan(
            [
                Fault(
                    site="server.crash",
                    action="kill",
                    match="sweep-point:job-000002",
                    after=KILLED_POINT,
                    count=1,
                ),
                Fault(
                    site="server.crash",
                    action="slow",
                    match="sweep-point:",
                    delay_s=0.4,
                    count=-1,
                ),
            ],
            seed=1,
            name="kill-mid-sweep",
        )
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(plan.to_json(), encoding="utf-8")
        proc, url, _ = _spawn_server(
            ["--port", "0", "--state-dir", str(state)],
            env_extra={FAULT_PLAN_ENV: str(plan_path)},
        )
        try:
            client = ServiceClient(url, timeout=120.0)
            ids = _submit_workload(client, wait_all=False)
            # The injected kill -9: the server dies mid-sweep with the
            # two singles still queued.
            assert proc.wait(timeout=300) == -signal.SIGKILL
        finally:
            _stop(proc)
        # What the crash left on disk: one terminal job, three
        # admissions without outcomes.
        recovery = load_wal(state / "admission.wal")
        assert set(recovery.terminal) == {ids[0]}
        assert set(recovery.pending) == set(ids[1:])

        # -- restart from the same state dir (no fault plan) -----------
        proc, url, _ = _spawn_server(
            ["--port", "0", "--state-dir", str(state)]
        )
        try:
            client = ServiceClient(url, timeout=120.0)
            # Every issued id resolves — original ids, no resubmission —
            # bit-identical to the uncrashed reference.
            for job_id in ids:
                record = client.result(job_id, wait=300.0)
                assert canonical(record) == canonical(reference[job_id])
            stats = client.stats()
            assert stats["recovered_requeued"] == 3
            # The points checkpointed before the kill replay from the
            # store: zero engine work for them.
            assert stats["sweep_points_resumed"] == KILLED_POINT
            assert (
                stats["sweep_points_simulated"]
                == SWEEP_SAMPLE - KILLED_POINT
            )
        finally:
            _stop(proc)


class TestSupervisorPolicy:
    """The restart policy as pure bookkeeping — no processes."""

    def test_clean_exit_never_restarts(self):
        supervisor = Supervisor(["true"], log=lambda _: None)
        assert not supervisor.should_restart(0)

    def test_long_uptime_resets_the_crash_loop(self):
        supervisor = Supervisor(
            ["true"], max_restarts=2, min_uptime_s=5.0, log=lambda _: None
        )
        supervisor.note_exit(-9, uptime_s=0.1)
        assert supervisor.short_lived == 1
        supervisor.note_exit(-9, uptime_s=60.0)
        assert supervisor.short_lived == 0
        assert supervisor.should_restart(-9)

    def test_consecutive_fast_deaths_exhaust_the_budget(self):
        supervisor = Supervisor(
            ["true"], max_restarts=2, min_uptime_s=5.0, log=lambda _: None
        )
        supervisor.note_exit(-9, uptime_s=0.1)
        assert supervisor.should_restart(-9)
        supervisor.note_exit(-9, uptime_s=0.1)
        assert not supervisor.should_restart(-9)

    def test_backoff_doubles_per_fast_death_and_caps(self):
        supervisor = Supervisor(
            ["true"], backoff_s=0.2, backoff_max_s=1.0, log=lambda _: None
        )
        assert supervisor.next_backoff() == 0.0
        supervisor.short_lived = 1
        assert supervisor.next_backoff() == pytest.approx(0.2)
        supervisor.short_lived = 2
        assert supervisor.next_backoff() == pytest.approx(0.4)
        supervisor.short_lived = 5
        assert supervisor.next_backoff() == 1.0  # capped

    def test_crash_loop_run_gives_up_nonzero(self):
        supervisor = Supervisor(
            [sys.executable, "-c", "raise SystemExit(3)"],
            max_restarts=2,
            backoff_s=0.01,
            backoff_max_s=0.02,
            min_uptime_s=30.0,
            log=lambda _: None,
        )
        assert supervisor.run() == 1
        assert supervisor.restarts == 1

    def test_clean_child_run_returns_zero(self):
        supervisor = Supervisor(
            [sys.executable, "-c", "pass"], log=lambda _: None
        )
        assert supervisor.run() == 0


class TestGenerateCrashPlans:
    def test_seeded_plans_target_the_crash_seams(self, tmp_path):
        plan = FaultPlan.generate_crash(3, state_dir=str(tmp_path), kills=2)
        assert len(plan.faults) == 2
        for fault in plan.faults:
            assert fault.site == "server.crash" and fault.action == "kill"
            assert fault.match in ("admit:", "finish:", "sweep-point:")
            assert fault.count == 1
        assert plan.state_dir == str(tmp_path)
        again = FaultPlan.generate_crash(3, state_dir=str(tmp_path), kills=2)
        assert [f.to_dict() for f in again.faults] == [
            f.to_dict() for f in plan.faults
        ]

    def test_generic_chaos_draw_never_kills_the_whole_server(self):
        # server.crash is the recovery plane's site; the in-process
        # chaos plans must never draw it (it would SIGKILL the tests).
        for seed in range(64):
            plan = FaultPlan.generate(seed, faults=8)
            assert all(f.site != "server.crash" for f in plan.faults)


class TestSupervisedServer:
    """``--supervise`` end to end: SIGKILL the child, watch it come
    back with the state recovered, then SIGTERM for a clean drain."""

    def test_kill_restart_and_graceful_stop(self, tmp_path):
        state = tmp_path / "state"
        port = _free_port()
        proc, url, lines = _spawn_server(
            [
                "--supervise",
                "--port", str(port),
                "--state-dir", str(state),
                "--restart-backoff", "0.1",
                "--min-uptime", "1",
            ]
        )
        try:
            # The satellite claim: ONE client object polls across the
            # whole crash window with no resubmission — its transport
            # retry loop absorbs the connection-refused blips.
            client = ServiceClient(
                url,
                timeout=60.0,
                retries=20,
                backoff_s=0.3,
                backoff_max_s=1.5,
            )
            job = client.run("fir", wait=300.0)
            assert job["state"] == "done"
            pid_before = client.healthz()["pid"]
            assert pid_before != proc.pid  # the child serves, not the parent
            os.kill(pid_before, signal.SIGKILL)
            again = client.job(job["id"])  # rides out the restart
            assert again["state"] == "done"
            assert canonical(again["record"]) == canonical(job["record"])
            health = client.wait_healthy(timeout=60.0)
            assert health["supervise_restarts"] == 1
            assert health["pid"] != pid_before
            # SIGTERM to the supervisor forwards to the child: graceful
            # drain, clean exit, supervision ends with code 0.
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
            assert any("stopped cleanly" in line for line in lines)
        finally:
            _stop(proc)
