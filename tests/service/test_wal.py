"""The admission WAL: append/replay round trips, torn-tail tolerance,
folded store-hit admissions, compaction bounds, and the shared line
codec contract with the sweep journal."""

from __future__ import annotations

import pytest

from repro.service import Fault, FaultPlan, injected
from repro.service.wal import (
    WAL_KIND,
    AdmissionWAL,
    WALError,
    load_wal,
)
from repro.sim.linecodec import encode_line, parse_line, scan_lines


class TestLineCodec:
    def test_encode_parse_round_trip(self):
        record = {"kind": "admitted", "job": "job-000001", "n": 3}
        assert parse_line(encode_line(record)) == record

    def test_corrupt_line_parses_to_none(self):
        line = encode_line({"kind": "terminal"})
        assert parse_line(line[:-1] + ("0" if line[-1] != "0" else "1")) is None

    def test_scan_stops_at_first_torn_line(self):
        good = [
            (encode_line({"kind": "a", "i": i}) + "\n").encode("utf-8")
            for i in range(3)
        ]
        data = good[0] + good[1] + b'{"torn": tr'
        records, valid_bytes, dropped = scan_lines(data)
        assert [r["i"] for r in records] == [0, 1]
        assert valid_bytes == len(good[0]) + len(good[1])
        assert dropped == 1

    def test_wal_and_journal_share_the_format(self):
        # The WAL's lines must parse with the journal's codec — one
        # on-disk format, one implementation.
        from repro.sim.journal import parse_journal_line

        line = encode_line({"kind": "admitted", "job": "job-000009"})
        assert parse_journal_line(line) == {
            "kind": "admitted",
            "job": "job-000009",
        }


class TestAdmissionWAL:
    def test_fresh_open_writes_header(self, tmp_path):
        wal = AdmissionWAL(tmp_path / "admission.wal")
        recovery = wal.open()
        assert recovery.header["kind"] == WAL_KIND
        assert recovery.pending == {} and recovery.terminal == {}
        wal.close()
        reread = load_wal(tmp_path / "admission.wal")
        assert reread.header["kind"] == WAL_KIND

    def test_append_and_replay_round_trip(self, tmp_path):
        path = tmp_path / "admission.wal"
        with AdmissionWAL(path) as wal:
            wal.append_admitted(
                "job-000001",
                key="k1",
                request={"scenario": "fir", "seed": 0},
                client="127.0.0.1",
                deadline_s=5.0,
            )
            wal.append_admitted(
                "job-000002", key="k2", request={"scenario": "mesh"}
            )
            wal.append_terminal("job-000001", "done", key="k1")
        recovery = AdmissionWAL(path).open()
        assert list(recovery.pending) == ["job-000002"]
        assert recovery.pending["job-000002"]["request"] == {
            "scenario": "mesh"
        }
        assert recovery.terminal["job-000001"]["status"] == "done"
        # The terminal record carries the admitted request along.
        assert recovery.terminal["job-000001"]["request"] == {
            "scenario": "fir",
            "seed": 0,
        }
        assert recovery.max_counter == 2

    def test_folded_store_hit_goes_straight_to_terminal(self, tmp_path):
        path = tmp_path / "admission.wal"
        with AdmissionWAL(path) as wal:
            wal.append_admitted(
                "job-000001", key="k1", request={}, status="done"
            )
            assert wal.stats.admitted_appends == 1
            assert wal.stats.terminal_appends == 0
        recovery = load_wal(path)
        assert recovery.pending == {}
        assert recovery.terminal["job-000001"]["status"] == "done"

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = tmp_path / "admission.wal"
        with AdmissionWAL(path) as wal:
            wal.append_admitted("job-000001", key="k1", request={})
        size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b'{"kind": "admitted", "job": "job-0')  # torn
        recovery = AdmissionWAL(path).open()
        assert recovery.lines_dropped == 1
        assert list(recovery.pending) == ["job-000001"]
        assert path.stat().st_size == size  # tail gone

    def test_wrong_kind_refused(self, tmp_path):
        path = tmp_path / "admission.wal"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(encode_line({"kind": "sweep-journal/v1"}) + "\n")
        with pytest.raises(WALError, match="not an admission-wal/v1"):
            AdmissionWAL(path).open()
        with pytest.raises(WALError):
            load_wal(path)

    def test_open_is_idempotent(self, tmp_path):
        wal = AdmissionWAL(tmp_path / "admission.wal")
        first = wal.open()
        wal.append_admitted("job-000001", key="k", request={})
        again = wal.open()
        assert again.header == first.header
        assert list(again.pending) == ["job-000001"]

    def test_compaction_bounds_the_log(self, tmp_path):
        path = tmp_path / "admission.wal"
        wal = AdmissionWAL(path, compact_every=10, keep_terminal=5)
        wal.open()
        wal.append_admitted("job-999999", key="kp", request={"pend": 1})
        for index in range(30):
            job_id = f"job-{index + 1:06d}"
            wal.append_admitted(job_id, key=f"k{index}", request={})
            wal.append_terminal(job_id, "done", key=f"k{index}")
        assert wal.stats.compactions >= 2
        wal.close()
        recovery = load_wal(path)
        # Pending admissions survive every compaction; terminals are
        # bounded to the most recent keep_terminal.
        assert list(recovery.pending) == ["job-999999"]
        assert len(recovery.terminal) == 5
        assert "job-000030" in recovery.terminal
        assert "job-000001" not in recovery.terminal
        # The compacted log replays cleanly through a normal open too.
        assert list(AdmissionWAL(path).open().pending) == ["job-999999"]

    def test_load_wal_never_mutates(self, tmp_path):
        path = tmp_path / "admission.wal"
        with AdmissionWAL(path) as wal:
            wal.append_admitted("job-000001", key="k", request={})
        with open(path, "ab") as handle:
            handle.write(b"torn tail bytes")
        before = path.read_bytes()
        recovery = load_wal(path)
        assert recovery.lines_dropped == 1
        assert path.read_bytes() == before

    def test_missing_file_loads_empty(self, tmp_path):
        recovery = load_wal(tmp_path / "never-written.wal")
        assert recovery.header is None
        assert recovery.pending == {} and recovery.terminal == {}

    def test_injected_append_fault_raises_oserror(self, tmp_path):
        wal = AdmissionWAL(tmp_path / "admission.wal")
        wal.open()
        plan = FaultPlan(
            [Fault(site="wal.append", action="io-error", count=1)]
        )
        with injected(plan):
            with pytest.raises(OSError):
                wal.append_admitted("job-000001", key="k", request={})
        # The budget spent, the next append lands.
        wal.append_admitted("job-000002", key="k2", request={})
        assert list(load_wal(wal.path).pending) == ["job-000002"]
