"""``equeue-serve --fsck``: the offline state-dir checker — clean
directories pass, corruption exits non-zero, crash residue is reported
without failing, and nothing is ever mutated."""

from __future__ import annotations

import io

from repro.service import JobRequest, JobScheduler, ResultStore
from repro.service.fsck import (
    STORE_NAME,
    WAL_NAME,
    fsck_state_dir,
    run_fsck,
)
from repro.service.wal import AdmissionWAL
from repro.sim.linecodec import encode_line


def _populated_state_dir(tmp_path):
    """A state dir the way a durable server leaves it: one completed
    job in the store, its admission + terminal in the WAL."""
    state = tmp_path / "state"
    wal = AdmissionWAL(state / WAL_NAME)
    scheduler = JobScheduler(store=ResultStore(state / STORE_NAME), wal=wal)
    scheduler.recover()
    scheduler.submit(JobRequest.make("fir"))
    scheduler.run_pending()
    wal.close()
    return state


class TestFsck:
    def test_clean_state_dir_passes(self, tmp_path):
        state = _populated_state_dir(tmp_path)
        report = fsck_state_dir(state)
        assert report.ok, report.errors
        assert report.counts["blobs_checked"] == 1
        assert report.counts["blobs_corrupt"] == 0
        assert report.counts["wal_pending"] == 0
        assert report.counts["wal_terminal"] == 1
        out = io.StringIO()
        assert run_fsck(state, out=out) == 0
        assert "result: ok" in out.getvalue()

    def test_corrupt_blob_is_corruption(self, tmp_path):
        state = _populated_state_dir(tmp_path)
        blob = next((state / STORE_NAME / "objects").glob("??/*.json"))
        blob.write_bytes(blob.read_bytes()[:-10] + b"corruption")
        report = fsck_state_dir(state)
        assert not report.ok
        assert report.counts["blobs_corrupt"] == 1
        assert any("sha256" in error for error in report.errors)
        assert run_fsck(state, out=io.StringIO()) == 1

    def test_torn_wal_tail_is_a_finding_not_corruption(self, tmp_path):
        state = _populated_state_dir(tmp_path)
        wal_path = state / WAL_NAME
        before = wal_path.read_bytes()
        with open(wal_path, "ab") as handle:
            handle.write(b'{"kind": "admitted", "job"')  # torn mid-append
        report = fsck_state_dir(state)
        assert report.ok
        assert report.counts["wal_lines_dropped"] == 1
        assert any("torn" in finding for finding in report.findings)
        # fsck is offline: the tail is still there for open() to handle.
        assert wal_path.read_bytes() != before

    def test_pending_admissions_reported(self, tmp_path):
        state = tmp_path / "state"
        with AdmissionWAL(state / WAL_NAME) as wal:
            wal.append_admitted(
                "job-000001", key="k", request={"scenario": "fir"}
            )
        (state / STORE_NAME / "objects").mkdir(parents=True)
        report = fsck_state_dir(state)
        assert report.ok
        assert report.counts["wal_pending"] == 1
        assert any("replay" in finding for finding in report.findings)

    def test_bad_wal_header_is_corruption(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        with open(state / WAL_NAME, "w", encoding="utf-8") as handle:
            handle.write(encode_line({"kind": "sweep-journal/v1"}) + "\n")
        report = fsck_state_dir(state)
        assert not report.ok

    def test_garbage_wal_is_corruption(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / WAL_NAME).write_bytes(b"not a wal at all\n")
        report = fsck_state_dir(state)
        assert not report.ok

    def test_stale_tmp_and_quarantine_are_findings(self, tmp_path):
        state = _populated_state_dir(tmp_path)
        objects = state / STORE_NAME / "objects"
        shard = next(objects.glob("??"))
        (shard / ".tmp-dead").write_text("crashed publisher dropping")
        quarantine = state / STORE_NAME / "quarantine"
        quarantine.mkdir()
        (quarantine / "bad.json").write_text("previously corrupt blob")
        report = fsck_state_dir(state)
        assert report.ok
        assert report.counts["tmp_files"] == 1
        assert report.counts["quarantined"] == 1

    def test_missing_state_dir_is_an_error(self, tmp_path):
        report = fsck_state_dir(tmp_path / "never-created")
        assert not report.ok
        assert run_fsck(tmp_path / "never-created", out=io.StringIO()) == 1
