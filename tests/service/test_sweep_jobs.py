"""Service sweep jobs: checkpointed execution, progress, restart-resume."""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    JobRequest,
    JobScheduler,
    ResultStore,
    ServiceClient,
    SweepJob,
    SweepRequest,
)
from repro.service.faults import FaultPlan, injected
from repro.service.scheduler import RequestError, request_store_key
from repro.service.server import make_server


@pytest.fixture
def scheduler(tmp_path):
    return JobScheduler(store=ResultStore(str(tmp_path / "store")), jobs=1)


class TestSweepRequest:
    def test_make_resolves_spec(self):
        request = SweepRequest.make("gemm:k=32", sample=4)
        assert request.scenario == "gemm"
        assert dict(request.base)["k"] == 32
        assert request.sample == 4

    def test_point_requests_are_job_requests(self):
        request = SweepRequest.make("gemm")
        points = request.point_requests()
        assert len(points) == 12
        assert all(isinstance(point, JobRequest) for point in points)
        # Every point has a distinct content-addressed identity.
        assert len({point.key() for point in points}) == 12

    def test_sample_is_deterministic_subset(self):
        sampled = SweepRequest.make("gemm", sample=3).point_requests()
        again = SweepRequest.make("gemm", sample=3).point_requests()
        full = {p.key() for p in SweepRequest.make("gemm").point_requests()}
        assert sampled == again
        assert len(sampled) == 3
        assert {p.key() for p in sampled} <= full

    @pytest.mark.parametrize("sample", [0, -1, 1.5, True, "3"])
    def test_bad_sample_rejected(self, sample):
        with pytest.raises(RequestError):
            SweepRequest.make("gemm", sample=sample)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(RequestError):
            SweepRequest.make("nope")


class TestSchedulerSweeps:
    def test_sweep_completes_with_aggregate_record(self, scheduler):
        job = scheduler.submit_sweep(SweepRequest.make("gemm", sample=4))
        assert isinstance(job, SweepJob)
        scheduler.run_pending()
        record = job.result()
        assert record["kind"] == "scenario-sweep/v1"
        assert record["points_total"] == 4
        assert record["points_failed"] == 0
        assert len(record["points"]) == 4
        assert job.progress() == {
            "points_done": 4, "points_total": 4, "points_resumed": 0,
        }

    def test_resubmit_is_store_hit(self, scheduler):
        job = scheduler.submit_sweep(SweepRequest.make("gemm", sample=4))
        scheduler.run_pending()
        again = scheduler.submit_sweep(SweepRequest.make("gemm", sample=4))
        assert again.done and again.source == "store"
        assert again.record == job.record

    def test_inflight_sweeps_coalesce(self, scheduler):
        first = scheduler.submit_sweep(SweepRequest.make("gemm", sample=4))
        second = scheduler.submit_sweep(SweepRequest.make("gemm", sample=4))
        assert first is second
        assert first.waiters == 2

    def test_points_checkpoint_as_single_job_hits(self, scheduler):
        request = SweepRequest.make("gemm", sample=4)
        scheduler.submit_sweep(request)
        scheduler.run_pending()
        # Each sweep point is now an individual store hit for plain jobs.
        point = request.point_requests()[0]
        job = scheduler.submit(point)
        assert job.done and job.source == "store"

    def test_failed_point_fails_sweep_but_checkpoints_rest(self, scheduler):
        plan = FaultPlan.from_dict({
            "name": "one-bad-point", "seed": 0,
            "faults": [{
                "site": "job.evaluate", "action": "engine-error",
                "after": 2, "count": 1,
            }],
        })
        request = SweepRequest.make("gemm", seed=3)
        with injected(plan):
            job = scheduler.submit_sweep(request)
            scheduler.run_pending()
        assert job.state == "error"
        assert "resubmit to resume" in job.error
        # The aggregate must NOT be stored (transient failure), but the
        # good points are checkpointed individually.
        assert scheduler.store.get(request_store_key(request)) is None
        assert scheduler.stats.sweep_point_failures == 1

        # Resubmit without faults: resumes from checkpoints.
        resumed = scheduler.submit_sweep(request)
        scheduler.run_pending()
        record = resumed.result()
        assert record["points_failed"] == 0
        assert resumed.points_resumed == 11
        assert scheduler.stats.sweep_points_resumed == 11
        # Only the failed point simulated on the resume pass.
        assert scheduler.stats.sweep_points_simulated == 12

    def test_restart_resumes_from_store(self, tmp_path):
        # Simulate a service restart: a fresh scheduler over the same
        # store directory inherits the checkpoints.
        store_path = str(tmp_path / "store")
        plan = FaultPlan.from_dict({
            "name": "crash-late", "seed": 0,
            "faults": [{
                "site": "job.evaluate", "action": "engine-error",
                "after": 3, "count": -1,
            }],
        })
        request = SweepRequest.make("gemm", sample=6)
        first = JobScheduler(store=ResultStore(store_path), jobs=1)
        with injected(plan):
            job = first.submit_sweep(request)
            first.run_pending()
        assert job.state == "error"

        second = JobScheduler(store=ResultStore(store_path), jobs=1)
        resumed = second.submit_sweep(request)
        second.run_pending()
        assert resumed.result()["points_total"] == 6
        assert second.stats.sweep_points_resumed == 3
        assert second.stats.sweep_points_simulated == 3

    def test_stats_carry_resilience_counters(self, scheduler):
        scheduler.submit_sweep(SweepRequest.make("gemm", sample=2))
        scheduler.run_pending()
        stats = scheduler.stats_dict()
        assert "resilience" in stats
        assert stats["sweeps_submitted"] == 1
        assert stats["sweep_points_simulated"] == 2


@pytest.fixture
def service(tmp_path):
    server = make_server(
        host="127.0.0.1", port=0, store_path=str(tmp_path / "store")
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


class TestSweepAPI:
    def test_run_sweep_end_to_end(self, service):
        client, _ = service
        job = client.run_sweep("gemm", sample=4, wait=120.0)
        assert job["state"] == "done"
        assert job["progress"]["points_total"] == 4
        assert job["progress"]["points_done"] == 4
        record = job["record"]
        assert record["points_failed"] == 0
        assert len(record["points"]) == 4
        stats = client.stats()
        assert stats["sweeps_submitted"] == 1
        assert "resilience" in stats

    def test_resubmitted_sweep_is_store_hit(self, service):
        client, _ = service
        first = client.run_sweep("gemm", sample=3, wait=120.0)
        again = client.run_sweep("gemm", sample=3, wait=120.0)
        assert again["source"] == "store"
        assert again["record"] == first["record"]

    def test_bad_sweep_request_is_400(self, service):
        client, _ = service
        with pytest.raises(Exception) as info:
            client.submit_sweep("gemm", sample=0)
        assert "sample" in str(info.value)
