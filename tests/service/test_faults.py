"""The fault-injection plane itself: plan generation determinism,
serialization round-trips, firing semantics (arming, budgets, payload
matching), and hook installation."""

from __future__ import annotations

import pytest

from repro.service import faults
from repro.service.faults import Fault, FaultPlan, InjectedCrash, InjectedFault


class TestFaultSpec:
    def test_unknown_site_and_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault("store.nope", "io-error")
        with pytest.raises(ValueError, match="does not support action"):
            Fault("store.get", "poison")

    def test_every_site_action_pair_constructs(self):
        for site, actions in faults.SITES.items():
            for action in actions:
                Fault(site, action)


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        contexts = ["gemm:seed=0", "fir:seed=1"]
        a = FaultPlan.generate(7, poison_contexts=contexts)
        b = FaultPlan.generate(7, poison_contexts=contexts)
        assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ_somewhere(self):
        plans = {
            FaultPlan.generate(seed, faults=6).to_json()
            for seed in range(10)
        }
        assert len(plans) > 1

    def test_round_trip_through_dict(self):
        plan = FaultPlan.generate(3, poison_contexts=["gemm:seed=0"])
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.name == plan.name and clone.seed == plan.seed

    def test_poison_excluded_without_contexts(self):
        for seed in range(20):
            plan = FaultPlan.generate(seed, faults=8)
            assert all(f.action != "poison" for f in plan.faults)

    def test_poison_targets_a_supplied_context(self):
        hits = []
        for seed in range(40):
            plan = FaultPlan.generate(seed, poison_contexts=["mesh:seed=2"])
            hits.extend(
                f for f in plan.faults if f.action == "poison"
            )
        assert hits, "40 seeds must draw poison at least once"
        assert all(f.match == "mesh:seed=2" and f.count == -1 for f in hits)


class TestFiring:
    def test_after_arms_and_count_budgets(self):
        plan = FaultPlan([Fault("store.get", "io-error", after=1, count=2)])
        assert plan.fire("store.get", payload="ok") == "ok"  # visit 0: unarmed
        for _ in range(2):
            with pytest.raises(OSError):
                plan.fire("store.get")
        assert plan.fire("store.get", payload="ok") == "ok"  # budget spent
        assert [entry[:2] for entry in plan.fired] == [
            ("store.get", "io-error")
        ] * 2

    def test_match_restricts_to_context(self):
        plan = FaultPlan(
            [Fault("job.evaluate", "poison", match="seed=2", count=-1)]
        )
        plan.fire("job.evaluate", context="gemm:seed=0")
        with pytest.raises(InjectedCrash):
            plan.fire("job.evaluate", context="gemm:seed=2")
        with pytest.raises(InjectedCrash):  # count=-1: fires forever
            plan.fire("job.evaluate", context="gemm:seed=2")

    def test_unknown_site_fires_loudly(self):
        plan = FaultPlan([])
        with pytest.raises(ValueError, match="unknown fault site"):
            plan.fire("store.nope")

    def test_corrupt_transforms_payload_deterministically(self):
        text = '{"cycles":42}'
        first = FaultPlan([Fault("store.get", "corrupt")], seed=5)
        second = FaultPlan([Fault("store.get", "corrupt")], seed=5)
        mutated = first.fire("store.get", payload=text)
        assert mutated != text
        assert second.fire("store.get", payload=text) == mutated

    def test_reset_rewinds_for_replay(self):
        plan = FaultPlan([Fault("store.get", "io-error", count=1)])
        with pytest.raises(OSError):
            plan.fire("store.get")
        plan.reset()
        assert not plan.fired
        with pytest.raises(OSError):
            plan.fire("store.get")

    def test_crash_is_base_exception_fault_is_exception(self):
        """The whole bisection design hangs on this distinction."""
        assert issubclass(InjectedCrash, BaseException)
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedFault, Exception)


class TestInstallation:
    def test_no_plan_means_no_effect(self):
        faults.clear()
        assert faults.fire("store.get", payload="ok") == "ok"
        assert faults.active() is None

    def test_injected_context_manager_installs_and_clears(self):
        from repro.sim import batch

        plan = FaultPlan([Fault("batch.map", "pool-error")])
        with faults.injected(plan) as active:
            assert faults.active() is active is plan
            assert batch.FAULT_HOOK is faults.fire
            with pytest.raises(InjectedFault):
                faults.fire("batch.map")
        assert faults.active() is None
        assert batch.FAULT_HOOK is None
