"""The telemetry surface of ``equeue-serve``: ``GET /metrics``
(Prometheus text), the versioned ``/stats`` schema with its flattened
``metrics`` mirror, per-job request ids and timings, and the access log.
"""

from __future__ import annotations

import io
import json
import threading
from urllib.request import urlopen

import pytest

from repro.obs import logs as obs_logs
from repro.obs import metrics as obs_metrics
from repro.obs.smoke import parse_metrics
from repro.service import ServiceClient
from repro.service.scheduler import STATS_SCHEMA
from repro.service.server import make_server

#: Flattened /stats keys (and, dots-to-underscores, /metrics samples)
#: that form the stable scrape contract; removing any is a breaking
#: change to dashboards (see docs/observability.md).
GOLDEN_FLAT_KEYS = (
    "scheduler.submitted",
    "scheduler.simulated",
    "scheduler.store_hits",
    "scheduler.coalesced",
    "scheduler.errors",
    "scheduler.queued",
    "scheduler.inflight",
    "scheduler.worker.worker_restarts",
    "scheduler.resilience.pool_rebuilds",
    "scheduler.wal_append_failures",
    "store.hits",
    "store.misses",
    "store.puts",
    "store.entries",
    "store.evictions",
    "program_cache.program_hits",
    "program_cache.programs_built",
)


@pytest.fixture
def service(tmp_path):
    server = make_server(
        host="127.0.0.1", port=0, store_path=str(tmp_path / "store")
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


def scrape(base_url):
    with urlopen(base_url + "/metrics", timeout=30) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read().decode("utf-8")
    return content_type, parse_metrics(body)


class TestStatsSchema:
    def test_versioned_schema_and_metrics_mirror(self, service):
        client, _ = service
        stats = client.stats()
        assert stats["schema"] == STATS_SCHEMA == "equeue-stats/v1"
        # Historical top-level keys stay (additive versioning only).
        for legacy in ("submitted", "store_hits", "simulated", "store"):
            assert legacy in stats
        flat = stats["metrics"]
        for key in GOLDEN_FLAT_KEYS:
            assert key in flat, f"missing golden /stats metric {key}"
        # The mirror re-derives from the same payload: spot-check.
        assert flat["scheduler.submitted"] == stats["submitted"]
        assert flat["store.hits"] == stats["store"]["hits"]

    def test_metrics_values_numeric_non_bool(self, service):
        client, _ = service
        for key, value in client.stats()["metrics"].items():
            assert isinstance(value, (int, float)), key
            assert not isinstance(value, bool), key


class TestMetricsEndpoint:
    def test_prometheus_content_type_and_parse(self, service):
        _, base_url = service
        content_type, samples = scrape(base_url)
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        for key in GOLDEN_FLAT_KEYS:
            prom = "equeue_" + key.replace(".", "_")
            assert prom in samples, f"missing /metrics sample {prom}"

    def test_warm_vs_cold_moves_hits_not_misses(self, service):
        client, base_url = service
        _, before = scrape(base_url)

        cold = client.run("gemm:m=4,k=8,n=4,tile_k=4", wait=120.0)
        assert cold["source"] == "simulated"
        _, after_cold = scrape(base_url)
        assert (
            after_cold["equeue_store_misses"]
            == before["equeue_store_misses"] + 1
        )
        assert after_cold["equeue_store_hits"] == before["equeue_store_hits"]
        assert (
            after_cold["equeue_engine_runs"]
            == before.get("equeue_engine_runs", 0) + 1
        )

        warm = client.run("gemm:m=4,k=8,n=4,tile_k=4", wait=120.0)
        assert warm["source"] == "store"
        _, after_warm = scrape(base_url)
        assert (
            after_warm["equeue_store_hits"]
            == after_cold["equeue_store_hits"] + 1
        )
        assert (
            after_warm["equeue_store_misses"]
            == after_cold["equeue_store_misses"]
        )
        # Warm requests never touch the engine.
        assert (
            after_warm["equeue_engine_runs"]
            == after_cold["equeue_engine_runs"]
        )

    def test_server_request_counters_move(self, service):
        client, base_url = service
        client.healthz()
        _, samples = scrape(base_url)
        assert samples["equeue_server_requests"] > 0
        assert samples["equeue_server_request_seconds_count"] > 0


class TestRequestIds:
    def test_job_carries_request_id_and_timings(self, service):
        client, _ = service
        cold = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert str(cold["request_id"]).startswith("req-")
        timings = cold["timings"]
        for key in ("queued_s", "execute_s", "total_s"):
            assert timings[key] >= 0
        assert timings["total_s"] >= timings["execute_s"]

        warm = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert warm["source"] == "store"
        assert str(warm["request_id"]).startswith("req-")
        assert warm["request_id"] != cold["request_id"]
        # The stored record is shared between requests, so per-request
        # fields must live on the job wire dict, never in the record.
        assert "request_id" not in warm["record"]
        assert "timings" not in warm["record"]
        assert warm["record"] == cold["record"]

    def test_request_id_lands_in_wal(self, tmp_path):
        server = make_server(
            host="127.0.0.1", port=0, state_dir=str(tmp_path / "state")
        )
        server.scheduler.start()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
        try:
            from repro.sim.linecodec import scan_lines

            job = client.run("mesh:rows=2,cols=2", wait=120.0)
            wal_path = tmp_path / "state" / "admission.wal"
            records, _, dropped = scan_lines(wal_path.read_bytes())
            assert dropped == 0
            admitted = [
                r
                for r in records
                if r.get("kind") == "admitted" and r.get("job") == job["id"]
            ]
            assert admitted, f"no admitted WAL record for {job['id']}"
            assert admitted[0]["request_id"] == job["request_id"]
        finally:
            server.shutdown()
            server.scheduler.stop()
            server.server_close()
            thread.join(timeout=30)


class TestAccessLog:
    def test_every_response_logged_with_request_id(self, service):
        client, base_url = service
        stream = io.StringIO()
        obs_logs.configure_logging(
            level="info", json_mode=True, stream=stream
        )
        try:
            client.healthz()
            with pytest.raises(Exception):
                client.job("job-does-not-exist")
        finally:
            obs_logs.configure_logging()
        records = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line
        ]
        access = [r for r in records if r["event"] == "http.access"]
        assert len(access) >= 2
        statuses = {r["status"] for r in access}
        assert 200 in statuses
        assert 404 in statuses  # 4xx responses are logged too
        for record in access:
            assert record["logger"] == "service.access"
            assert record["method"] in ("GET", "POST")
            assert record["path"].startswith("/")
            assert record["duration_ms"] >= 0
            assert str(record["request_id"]).startswith("req-")

    def test_response_header_echoes_request_id(self, service):
        _, base_url = service
        with urlopen(base_url + "/healthz", timeout=30) as response:
            rid = response.headers.get("X-Request-Id", "")
        assert rid.startswith("req-")


class TestMetricsAlwaysOnForService:
    def test_make_server_enables_registry(self, service):
        # The service tier is the telemetry plane's home: booting a
        # server turns the process switch on.
        assert obs_metrics.metrics_enabled()
