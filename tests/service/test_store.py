"""The persistent content-addressed result store: addressing, atomic
publication, multi-process race semantics, counters, and eviction."""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.service.store import (
    ResultStore,
    code_version,
    inputs_digest,
    request_key,
)


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestAddressing:
    def test_request_key_is_order_independent(self):
        a = request_key({"x": 1, "y": [1, 2], "z": "s"})
        b = request_key({"z": "s", "y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 64 and set(a) <= set("0123456789abcdef")

    def test_request_key_changes_with_content(self):
        base = {"x": 1, "y": 2}
        assert request_key(base) != request_key({**base, "y": 3})

    def test_inputs_digest_tracks_data_not_seed(self):
        import numpy as np

        a = {"buf": np.arange(6, dtype=np.int32).reshape(2, 3)}
        b = {"buf": np.arange(6, dtype=np.int32).reshape(2, 3)}
        assert inputs_digest(a) == inputs_digest(b)
        b["buf"][0, 0] = 99
        assert inputs_digest(a) != inputs_digest(b)
        # dtype and shape are part of the content
        c = {"buf": np.arange(6, dtype=np.int64).reshape(2, 3)}
        d = {"buf": np.arange(6, dtype=np.int32).reshape(3, 2)}
        assert inputs_digest(a) != inputs_digest(c)
        assert inputs_digest(a) != inputs_digest(d)
        assert inputs_digest(None) == "no-inputs"

    def test_code_version_is_stable_and_overridable(self, monkeypatch):
        first = code_version()
        assert first == code_version()
        monkeypatch.setenv("EQUEUE_CODE_VERSION", "bumped")
        assert code_version() != first
        monkeypatch.delenv("EQUEUE_CODE_VERSION")
        assert code_version() == first

    def test_malformed_keys_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "short", "Z" * 64, "../../../../etc/passwd"):
            with pytest.raises(ValueError):
                store.get(bad)


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_of("k1")
        record = {"cycles": 42, "summary": {"scheduler_events": 7}}
        assert store.get(key) is None
        assert store.put(key, record) is True
        assert store.get(key) == record
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1
        assert len(store) == 1
        assert store.keys() == [key]

    def test_second_put_loses_and_content_stays(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_of("k1")
        assert store.put(key, {"v": 1}) is True
        assert store.put(key, {"v": 1}) is False
        assert store.stats.lost_races == 1
        assert store.get(key) == {"v": 1}

    def test_blob_is_canonical_json_line_plus_digest_trailer(self, tmp_path):
        from repro.analysis.export import record_line

        store = ResultStore(tmp_path)
        key = key_of("k1")
        record = {"b": 2, "a": 1}
        store.put(key, record)
        raw = store._blob_path(key).read_text(encoding="utf-8")
        line = record_line(record)
        assert line == '{"a":1,"b":2}'  # keys sorted, compact
        digest = hashlib.sha256(line.encode()).hexdigest()
        assert raw == f"{line}\nsha256:{digest}\n"

    def test_persistence_across_instances(self, tmp_path):
        key = key_of("k1")
        ResultStore(tmp_path).put(key, {"v": 7})
        fresh = ResultStore(tmp_path)  # a different process, effectively
        assert fresh.get(key) == {"v": 7}

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(key_of("k1"), {"v": 1})
        store.put(key_of("k2"), {"v": 2})
        store.clear()
        assert len(store) == 0


class TestEviction:
    def test_lru_eviction_beyond_cap(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        k1, k2, k3 = key_of("k1"), key_of("k2"), key_of("k3")
        store.put(k1, {"v": 1})
        os.utime(store._blob_path(k1), (100, 100))
        store.put(k2, {"v": 2})
        os.utime(store._blob_path(k2), (200, 200))
        store.put(k3, {"v": 3})
        assert store.stats.evictions == 1
        assert store.get(k1) is None  # oldest evicted
        assert store.get(k2) == {"v": 2}
        assert store.get(k3) == {"v": 3}

    def test_hits_refresh_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        k1, k2, k3 = key_of("k1"), key_of("k2"), key_of("k3")
        store.put(k1, {"v": 1})
        os.utime(store._blob_path(k1), (100, 100))
        store.put(k2, {"v": 2})
        os.utime(store._blob_path(k2), (200, 200))
        store.get(k1)  # refresh k1: now k2 is the LRU entry
        store.put(k3, {"v": 3})
        assert store.get(k2) is None
        assert store.get(k1) == {"v": 1}


class TestIntegrity:
    def test_corrupt_blob_quarantined_and_served_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_of("k1")
        store.put(key, {"v": 1})
        path = store._blob_path(key)
        text = path.read_text(encoding="utf-8")
        path.write_text(text.replace('"v":1', '"v":7'), encoding="utf-8")
        assert store.get(key) is None  # digest mismatch: miss, not 7
        assert store.stats.quarantined == 1
        assert not path.exists()
        quarantined = list((tmp_path / "quarantine").iterdir())
        assert [p.name for p in quarantined] == [path.name]
        # The key is re-publishable after quarantine.
        assert store.put(key, {"v": 1}) is True
        assert store.get(key) == {"v": 1}

    def test_truncated_and_garbage_blobs_are_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        for index, payload in enumerate(["", '{"v":1}\n', "not json\nsha256:x\n"]):
            key = key_of(f"bad-{index}")
            path = store._blob_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(payload, encoding="utf-8")
            assert store.get(key) is None
        assert store.stats.quarantined == 3

    def test_injected_read_error_is_a_miss(self, tmp_path):
        from repro.service import faults

        store = ResultStore(tmp_path)
        key = key_of("k1")
        store.put(key, {"v": 1})
        plan = faults.FaultPlan([faults.Fault("store.get", "io-error")])
        with faults.injected(plan):
            assert store.get(key) is None
        assert store.stats.read_errors == 1
        assert store.get(key) == {"v": 1}  # blob itself is intact

    def test_injected_corruption_is_caught_by_digest(self, tmp_path):
        from repro.service import faults

        store = ResultStore(tmp_path)
        key = key_of("k1")
        store.put(key, {"v": 1})
        plan = faults.FaultPlan(
            [faults.Fault("store.get", "corrupt", count=-1)]
        )
        with faults.injected(plan):
            assert store.get(key) is None, "bit-flipped read must not parse"
        assert store.stats.quarantined == 1


class TestTmpSweep:
    def test_stale_tmp_swept_fresh_kept(self, tmp_path):
        store = ResultStore(tmp_path)
        bucket = tmp_path / "objects" / "ab"
        bucket.mkdir(parents=True, exist_ok=True)
        stale = bucket / ".tmp-stale.json"
        stale.write_text("partial", encoding="utf-8")
        os.utime(stale, (100, 100))
        fresh = bucket / ".tmp-fresh.json"
        fresh.write_text("partial", encoding="utf-8")
        assert store.sweep_tmp() == 1
        assert not stale.exists()
        assert fresh.exists(), "a possibly-live publish must survive"
        assert store.stats.tmp_swept == 1

    def test_crash_mid_publish_then_restart_sweeps(self, tmp_path):
        """Simulate a publisher dying between mkstemp and os.link: the
        injected put fault fires before any write, so crash the hard way
        — write the temp file, never publish — then restart the store."""
        store = ResultStore(tmp_path)
        key = key_of("k1")
        bucket = store._blob_path(key).parent
        bucket.mkdir(parents=True, exist_ok=True)
        orphan = bucket / ".tmp-crashed-publisher.json"
        orphan.write_text('{"v":1}\nsha2', encoding="utf-8")  # torn write
        os.utime(orphan, (100, 100))
        reborn = ResultStore(tmp_path)  # the restart runs the sweep
        assert reborn.stats.tmp_swept == 1
        assert not orphan.exists()
        assert reborn.get(key) is None  # torn temp never became a blob
        assert reborn.put(key, {"v": 1}) is True

    def test_injected_put_fault_leaves_store_readable(self, tmp_path):
        from repro.service import faults

        store = ResultStore(tmp_path)
        k1, k2 = key_of("k1"), key_of("k2")
        store.put(k1, {"v": 1})
        plan = faults.FaultPlan([faults.Fault("store.put", "io-error")])
        with faults.injected(plan):
            with pytest.raises(OSError):
                store.put(k2, {"v": 2})
        assert store.get(k1) == {"v": 1}
        assert store.get(k2) is None
        assert store.put(k2, {"v": 2}) is True  # retry succeeds


# ---------------------------------------------------------------------------
# Multi-process race: one winner, bit-identical reads
# ---------------------------------------------------------------------------


def _churning_put(root, worker_id, barrier, failures):
    """Publish 40 distinct keys through an LRU cap of 8, all at once:
    every process is simultaneously putting and evicting each other's
    blobs.  Any exception is a failure (eviction must tolerate blobs
    vanishing underneath it)."""
    try:
        store = ResultStore(root, max_entries=8)
        barrier.wait(timeout=30)
        for index in range(40):
            key = key_of(f"churn-{worker_id}-{index}")
            store.put(key, {"worker": worker_id, "index": index})
            shared = key_of(f"shared-{index % 5}")
            store.put(shared, {"worker": -1, "index": index % 5})
            store.get(shared)
    except BaseException as error:  # noqa: BLE001 - reported to parent
        failures.put(f"worker {worker_id}: {type(error).__name__}: {error}")


def _racing_put(root, key, barrier, results):
    """Both processes publish the same deterministic record at once."""
    store = ResultStore(root)
    record = {"cycles": 42, "summary": {"scheduler_events": 7, "pi": 3.25}}
    barrier.wait(timeout=30)
    won = store.put(key, record)
    blob = store._blob_path(key).read_bytes()
    results.put((os.getpid(), won, blob))


class TestConcurrency:
    def test_two_process_race_single_winner_identical_reads(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        key = key_of("contested")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()
        workers = [
            ctx.Process(
                target=_racing_put, args=(tmp_path, key, barrier, results)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        wins = sorted(won for _, won, _ in outcomes)
        assert wins == [False, True], "exactly one process must win the put"
        blobs = {blob for _, _, blob in outcomes}
        assert len(blobs) == 1, "every reader sees bit-identical bytes"
        # And a fresh reader parses (and digest-verifies) the record back.
        line = blobs.pop().decode("utf-8").splitlines()[0]
        assert ResultStore(tmp_path).get(key) == json.loads(line)

    def test_eviction_races_concurrent_puts(self, tmp_path):
        """An LRU-capped store evicting while other processes publish:
        no crash, no corruption, every surviving blob digest-verifies."""
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(3)
        failures = ctx.Queue()
        workers = [
            ctx.Process(
                target=_churning_put,
                args=(tmp_path, worker_id, barrier, failures),
            )
            for worker_id in range(3)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        assert failures.empty(), failures.get()
        # Survivors are a valid subset: every blob reads back verified.
        survivor = ResultStore(tmp_path)
        keys = survivor.keys()
        assert keys, "churn must leave at least one blob"
        for key in keys:
            record = survivor.get(key)
            assert record is not None and "worker" in record
        assert survivor.stats.quarantined == 0
