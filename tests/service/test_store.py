"""The persistent content-addressed result store: addressing, atomic
publication, multi-process race semantics, counters, and eviction."""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os

import pytest

from repro.service.store import (
    ResultStore,
    code_version,
    inputs_digest,
    request_key,
)


def key_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestAddressing:
    def test_request_key_is_order_independent(self):
        a = request_key({"x": 1, "y": [1, 2], "z": "s"})
        b = request_key({"z": "s", "y": [1, 2], "x": 1})
        assert a == b
        assert len(a) == 64 and set(a) <= set("0123456789abcdef")

    def test_request_key_changes_with_content(self):
        base = {"x": 1, "y": 2}
        assert request_key(base) != request_key({**base, "y": 3})

    def test_inputs_digest_tracks_data_not_seed(self):
        import numpy as np

        a = {"buf": np.arange(6, dtype=np.int32).reshape(2, 3)}
        b = {"buf": np.arange(6, dtype=np.int32).reshape(2, 3)}
        assert inputs_digest(a) == inputs_digest(b)
        b["buf"][0, 0] = 99
        assert inputs_digest(a) != inputs_digest(b)
        # dtype and shape are part of the content
        c = {"buf": np.arange(6, dtype=np.int64).reshape(2, 3)}
        d = {"buf": np.arange(6, dtype=np.int32).reshape(3, 2)}
        assert inputs_digest(a) != inputs_digest(c)
        assert inputs_digest(a) != inputs_digest(d)
        assert inputs_digest(None) == "no-inputs"

    def test_code_version_is_stable_and_overridable(self, monkeypatch):
        first = code_version()
        assert first == code_version()
        monkeypatch.setenv("EQUEUE_CODE_VERSION", "bumped")
        assert code_version() != first
        monkeypatch.delenv("EQUEUE_CODE_VERSION")
        assert code_version() == first

    def test_malformed_keys_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "short", "Z" * 64, "../../../../etc/passwd"):
            with pytest.raises(ValueError):
                store.get(bad)


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_of("k1")
        record = {"cycles": 42, "summary": {"scheduler_events": 7}}
        assert store.get(key) is None
        assert store.put(key, record) is True
        assert store.get(key) == record
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.puts == 1
        assert len(store) == 1
        assert store.keys() == [key]

    def test_second_put_loses_and_content_stays(self, tmp_path):
        store = ResultStore(tmp_path)
        key = key_of("k1")
        assert store.put(key, {"v": 1}) is True
        assert store.put(key, {"v": 1}) is False
        assert store.stats.lost_races == 1
        assert store.get(key) == {"v": 1}

    def test_blob_is_one_canonical_json_line(self, tmp_path):
        from repro.analysis.export import record_line

        store = ResultStore(tmp_path)
        key = key_of("k1")
        record = {"b": 2, "a": 1}
        store.put(key, record)
        raw = store._blob_path(key).read_text(encoding="utf-8")
        assert raw == record_line(record) + "\n"
        assert raw == '{"a":1,"b":2}\n'  # keys sorted, compact

    def test_persistence_across_instances(self, tmp_path):
        key = key_of("k1")
        ResultStore(tmp_path).put(key, {"v": 7})
        fresh = ResultStore(tmp_path)  # a different process, effectively
        assert fresh.get(key) == {"v": 7}

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(key_of("k1"), {"v": 1})
        store.put(key_of("k2"), {"v": 2})
        store.clear()
        assert len(store) == 0


class TestEviction:
    def test_lru_eviction_beyond_cap(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        k1, k2, k3 = key_of("k1"), key_of("k2"), key_of("k3")
        store.put(k1, {"v": 1})
        os.utime(store._blob_path(k1), (100, 100))
        store.put(k2, {"v": 2})
        os.utime(store._blob_path(k2), (200, 200))
        store.put(k3, {"v": 3})
        assert store.stats.evictions == 1
        assert store.get(k1) is None  # oldest evicted
        assert store.get(k2) == {"v": 2}
        assert store.get(k3) == {"v": 3}

    def test_hits_refresh_recency(self, tmp_path):
        store = ResultStore(tmp_path, max_entries=2)
        k1, k2, k3 = key_of("k1"), key_of("k2"), key_of("k3")
        store.put(k1, {"v": 1})
        os.utime(store._blob_path(k1), (100, 100))
        store.put(k2, {"v": 2})
        os.utime(store._blob_path(k2), (200, 200))
        store.get(k1)  # refresh k1: now k2 is the LRU entry
        store.put(k3, {"v": 3})
        assert store.get(k2) is None
        assert store.get(k1) == {"v": 1}


# ---------------------------------------------------------------------------
# Multi-process race: one winner, bit-identical reads
# ---------------------------------------------------------------------------


def _racing_put(root, key, barrier, results):
    """Both processes publish the same deterministic record at once."""
    store = ResultStore(root)
    record = {"cycles": 42, "summary": {"scheduler_events": 7, "pi": 3.25}}
    barrier.wait(timeout=30)
    won = store.put(key, record)
    blob = store._blob_path(key).read_bytes()
    results.put((os.getpid(), won, blob))


class TestConcurrency:
    def test_two_process_race_single_winner_identical_reads(self, tmp_path):
        ctx = multiprocessing.get_context("fork")
        key = key_of("contested")
        barrier = ctx.Barrier(2)
        results = ctx.Queue()
        workers = [
            ctx.Process(
                target=_racing_put, args=(tmp_path, key, barrier, results)
            )
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        wins = sorted(won for _, won, _ in outcomes)
        assert wins == [False, True], "exactly one process must win the put"
        blobs = {blob for _, _, blob in outcomes}
        assert len(blobs) == 1, "every reader sees bit-identical bytes"
        # And a fresh reader parses the same record back.
        assert ResultStore(tmp_path).get(key) == json.loads(blobs.pop())
