"""``equeue-serve`` end to end: the HTTP JSON API over an ephemeral
port, driven exclusively through :class:`ServiceClient` (the wire format
is the thing under test), plus the subprocess smoke."""

from __future__ import annotations

import subprocess
import sys
import threading
from contextlib import contextmanager

import pytest

from repro.scenarios import scenario_names
from repro.service import ServiceClient, ServiceError
from repro.service.server import make_server


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port, with a persistent store."""
    server = make_server(
        host="127.0.0.1", port=0, store_path=str(tmp_path / "store")
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


class TestAPI:
    def test_healthz_and_scenarios(self, service):
        client, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["worker_alive"] and health["watchdog_alive"]
        assert health["worker_restarts"] == 0
        assert health["last_error"] is None
        assert health["draining"] is False
        listing = client.scenarios()
        assert sorted(entry["name"] for entry in listing) == list(
            scenario_names()
        )
        gemm = next(entry for entry in listing if entry["name"] == "gemm")
        assert gemm["defaults"]["tile_k"] == 4
        assert gemm["summary"]

    def test_submit_wait_then_store_hit(self, service):
        client, _ = service
        cold = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert cold["state"] == "done"
        assert cold["source"] == "simulated"
        record = cold["record"]
        assert record["cycles"] > 0
        assert record["checked"]["cycles"] == record["cycles"]
        assert record["scenario"] == "mesh"
        assert record["config"]["rows"] == 2

        warm = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert warm["source"] == "store"
        assert warm["record"] == record
        # Equivalent spelling via the config dict: same key, same blob.
        spelled = client.run(
            "mesh", config={"rows": 2, "cols": 2}, wait=120.0
        )
        assert spelled["source"] == "store"
        assert spelled["record"] == record

        stats = client.stats()
        assert stats["simulated"] == 1
        assert stats["store_hits"] == 2
        assert stats["store"]["entries"] == 1
        assert stats["code_version"]

    def test_submit_poll_and_result_endpoint(self, service):
        client, _ = service
        job = client.submit("fir", wait=None)
        assert job["state"] in ("queued", "running", "done")
        finished = client.job(job["id"], wait=120.0)
        assert finished["state"] == "done"
        record = client.result(job["id"])
        assert record["cycles"] == finished["record"]["cycles"]

    def test_error_responses(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="valid scenarios") as info:
            client.submit("nonesuch")
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="valid options") as info:
            client.submit("fir", options={"trace": True})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job("job-999999")
        assert info.value.status == 404
        with pytest.raises(ServiceError, match="no config key") as info:
            client.submit("fir", config={"bogus": 3})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="must be a scalar") as info:
            client.submit("fir", config={"taps": [1, 2]})
        assert info.value.status == 400

    def test_oversized_body_rejected(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="too large") as info:
            client._call(
                "POST", "/jobs",
                {"scenario": "fir", "pad": "x" * (1 << 20)},
            )
        assert info.value.status == 400

    def test_bad_wait_rejected_without_orphan_job(self, service):
        client, server = service
        before = server.scheduler.stats.submitted
        # Raw wire payload: the typed client can't produce a bad wait.
        with pytest.raises(ServiceError, match="bad wait") as info:
            client._call("POST", "/jobs", {"scenario": "fir", "wait": "soon"})
        assert info.value.status == 400
        # The 400 must not leave a queued job nobody can poll.
        assert server.scheduler.stats.submitted == before

    def test_failed_job_surfaces_as_error(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="EngineError"):
            client.run("fir", options={"max_cycles": 1}, wait=120.0)

    def test_unchecked_truncated_run_round_trips(self, service):
        client, _ = service
        job = client.run(
            "gemm", options={"max_cycles": 7}, check=False, wait=120.0
        )
        assert job["record"]["truncated"] is True
        assert job["record"]["cycles"] == 7
        assert job["record"]["checked"] is None


@contextmanager
def overload_server(**kwargs):
    """A live server with admission-control knobs and the worker NOT
    started — queued jobs stay queued, so overload is deterministic."""
    server = make_server(host="127.0.0.1", port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=30.0, retries=1)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


class TestOverload:
    def test_queue_full_returns_clean_503(self):
        with overload_server(max_queue=1) as (client, _):
            first = client.submit("fir", wait=None)
            assert first["state"] == "queued"
            with pytest.raises(ServiceError, match="queue full") as info:
                client.submit("fir", seed=1, wait=None)
            assert info.value.status == 503
            assert info.value.retry_after == 1.0
            # The same request coalesces for free even at capacity.
            twin = client.submit("fir", wait=None)
            assert twin["id"] == first["id"] and twin["waiters"] == 2

    def test_draining_returns_503_and_healthz_says_so(self):
        with overload_server() as (client, server):
            server.scheduler.drain()
            with pytest.raises(ServiceError, match="draining") as info:
                client.submit("fir", wait=None)
            assert info.value.status == 503
            assert client.healthz()["status"] == "draining"

    def test_rate_limit_returns_429_with_retry_after(self):
        with overload_server(rate_limit=0.001, rate_burst=2) as (client, _):
            client.submit("fir", seed=0, wait=None)
            client.submit("fir", seed=1, wait=None)
            with pytest.raises(ServiceError, match="rate limit") as info:
                client.submit("fir", seed=2, wait=None)
            assert info.value.status == 429
            assert info.value.retry_after and info.value.retry_after > 0
            # GETs are not admission-controlled: polling stays free.
            assert client.healthz()["status"] in ("ok", "degraded")

    def test_bad_deadline_rejected_without_orphan_job(self):
        with overload_server() as (client, server):
            before = server.scheduler.stats.submitted
            with pytest.raises(ServiceError, match="bad deadline") as info:
                client._call(
                    "POST", "/jobs", {"scenario": "fir", "deadline": "soon"}
                )
            assert info.value.status == 400
            with pytest.raises(ServiceError, match="deadline must be"):
                client._call(
                    "POST", "/jobs", {"scenario": "fir", "deadline": -1}
                )
            assert server.scheduler.stats.submitted == before

    def test_deadline_accepted_and_attached(self):
        with overload_server() as (client, server):
            job = client.submit("fir", wait=None, deadline=5.0)
            assert server.scheduler.job(job["id"]).deadline_s == 5.0

    def test_result_504_surfaces_after_wait_budget(self):
        with overload_server() as (client, _):
            job = client.submit("fir", wait=None)  # never runs: no worker
            with pytest.raises(ServiceError, match="still") as info:
                client.result(job["id"], wait=0.3)
            assert info.value.status == 504


class TestClientRetry:
    """Transport-level client behavior, against a scripted _call_once."""

    def _scripted(self, outcomes):
        client = ServiceClient(
            "http://invalid.test", retries=4, backoff_s=0.001
        )
        calls = []

        def fake_call_once(method, path, payload, timeout):
            calls.append(path)
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        client._call_once = fake_call_once
        return client, calls

    def test_retries_on_503_then_succeeds(self):
        client, calls = self._scripted(
            [
                ServiceError("queue full", status=503, retry_after=0.001),
                ServiceError("down", status=None),  # transport error
                {"job": {"id": "job-1"}},
            ]
        )
        assert client._call("POST", "/jobs", {}) == {"job": {"id": "job-1"}}
        assert len(calls) == 3

    def test_non_retryable_status_raises_immediately(self):
        client, calls = self._scripted(
            [ServiceError("bad request", status=400)]
        )
        with pytest.raises(ServiceError, match="bad request"):
            client._call("POST", "/jobs", {})
        assert len(calls) == 1

    def test_retries_exhausted_raises_last_error(self):
        client, calls = self._scripted(
            [ServiceError("full", status=503) for _ in range(4)]
        )
        with pytest.raises(ServiceError, match="full") as info:
            client._call("POST", "/jobs", {})
        assert info.value.status == 503
        assert len(calls) == 4

    def test_result_resumes_through_504_expiries(self):
        """A 504 means *still working, poll again* — not an error, until
        the client's own wait budget is spent."""
        client, calls = self._scripted(
            [
                ServiceError("job job-1 still running", status=504),
                ServiceError("job job-1 still running", status=504),
                {"cycles": 42},
            ]
        )
        assert client.result("job-1", wait=30.0) == {"cycles": 42}
        assert len(calls) == 3

    def test_result_without_wait_raises_504_directly(self):
        client, _ = self._scripted(
            [ServiceError("job job-1 still queued", status=504)]
        )
        with pytest.raises(ServiceError) as info:
            client.result("job-1")
        assert info.value.status == 504


class TestSmoke:
    def test_subprocess_smoke(self):
        """The CI smoke end to end: real subprocess server, two requests,
        second one a store hit, clean shutdown (exit 0)."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro.service.smoke"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "warm served from store" in completed.stdout
        assert "clean shutdown" in completed.stdout
