"""``equeue-serve`` end to end: the HTTP JSON API over an ephemeral
port, driven exclusively through :class:`ServiceClient` (the wire format
is the thing under test), plus the subprocess smoke."""

from __future__ import annotations

import subprocess
import sys
import threading

import pytest

from repro.scenarios import scenario_names
from repro.service import ServiceClient, ServiceError
from repro.service.server import make_server


@pytest.fixture
def service(tmp_path):
    """A live server on an ephemeral port, with a persistent store."""
    server = make_server(
        host="127.0.0.1", port=0, store_path=str(tmp_path / "store")
    )
    server.scheduler.start()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=60.0)
    try:
        yield client, server
    finally:
        server.shutdown()
        server.scheduler.stop()
        server.server_close()
        thread.join(timeout=30)


class TestAPI:
    def test_healthz_and_scenarios(self, service):
        client, _ = service
        assert client.healthz() == {"status": "ok"}
        listing = client.scenarios()
        assert sorted(entry["name"] for entry in listing) == list(
            scenario_names()
        )
        gemm = next(entry for entry in listing if entry["name"] == "gemm")
        assert gemm["defaults"]["tile_k"] == 4
        assert gemm["summary"]

    def test_submit_wait_then_store_hit(self, service):
        client, _ = service
        cold = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert cold["state"] == "done"
        assert cold["source"] == "simulated"
        record = cold["record"]
        assert record["cycles"] > 0
        assert record["checked"]["cycles"] == record["cycles"]
        assert record["scenario"] == "mesh"
        assert record["config"]["rows"] == 2

        warm = client.run("mesh:rows=2,cols=2", wait=120.0)
        assert warm["source"] == "store"
        assert warm["record"] == record
        # Equivalent spelling via the config dict: same key, same blob.
        spelled = client.run(
            "mesh", config={"rows": 2, "cols": 2}, wait=120.0
        )
        assert spelled["source"] == "store"
        assert spelled["record"] == record

        stats = client.stats()
        assert stats["simulated"] == 1
        assert stats["store_hits"] == 2
        assert stats["store"]["entries"] == 1
        assert stats["code_version"]

    def test_submit_poll_and_result_endpoint(self, service):
        client, _ = service
        job = client.submit("fir", wait=None)
        assert job["state"] in ("queued", "running", "done")
        finished = client.job(job["id"], wait=120.0)
        assert finished["state"] == "done"
        record = client.result(job["id"])
        assert record["cycles"] == finished["record"]["cycles"]

    def test_error_responses(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="valid scenarios") as info:
            client.submit("nonesuch")
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="valid options") as info:
            client.submit("fir", options={"trace": True})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job("job-999999")
        assert info.value.status == 404
        with pytest.raises(ServiceError, match="no config key") as info:
            client.submit("fir", config={"bogus": 3})
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="must be a scalar") as info:
            client.submit("fir", config={"taps": [1, 2]})
        assert info.value.status == 400

    def test_oversized_body_rejected(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="too large") as info:
            client._call(
                "POST", "/jobs",
                {"scenario": "fir", "pad": "x" * (1 << 20)},
            )
        assert info.value.status == 400

    def test_bad_wait_rejected_without_orphan_job(self, service):
        client, server = service
        before = server.scheduler.stats.submitted
        # Raw wire payload: the typed client can't produce a bad wait.
        with pytest.raises(ServiceError, match="bad wait") as info:
            client._call("POST", "/jobs", {"scenario": "fir", "wait": "soon"})
        assert info.value.status == 400
        # The 400 must not leave a queued job nobody can poll.
        assert server.scheduler.stats.submitted == before

    def test_failed_job_surfaces_as_error(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="EngineError"):
            client.run("fir", options={"max_cycles": 1}, wait=120.0)

    def test_unchecked_truncated_run_round_trips(self, service):
        client, _ = service
        job = client.run(
            "gemm", options={"max_cycles": 7}, check=False, wait=120.0
        )
        assert job["record"]["truncated"] is True
        assert job["record"]["cycles"] == 7
        assert job["record"]["checked"] is None


class TestSmoke:
    def test_subprocess_smoke(self):
        """The CI smoke end to end: real subprocess server, two requests,
        second one a store hit, clean shutdown (exit 0)."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro.service.smoke"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "warm served from store" in completed.stdout
        assert "clean shutdown" in completed.stdout
