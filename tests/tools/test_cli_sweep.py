"""``equeue-sim --sweep``: flags, journaling, SIGTERM drain, resume."""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

import repro.scenarios.sweep as sweep_module
from repro.sim.journal import load_journal
from repro.tools import equeue_sim


def _sweep_out(tmp_path, name, *extra):
    out = tmp_path / name
    code = equeue_sim.main(
        ["--scenario", "gemm", "--sweep", "--sweep-out", str(out), *extra]
    )
    return code, out


class TestSweepFlag:
    def test_sweep_runs_and_reports(self, tmp_path, capsys):
        code, out = _sweep_out(tmp_path, "a.jsonl")
        assert code == 0
        stdout = capsys.readouterr().out
        assert "== sweep gemm:" in stdout
        assert "cycles:" in stdout
        assert out.exists()

    def test_sweep_out_is_deterministic(self, tmp_path, capsys):
        _, first = _sweep_out(tmp_path, "a.jsonl")
        _, second = _sweep_out(tmp_path, "b.jsonl")
        assert first.read_bytes() == second.read_bytes()

    def test_check_runs_oracles(self, tmp_path, capsys):
        code, _ = _sweep_out(tmp_path, "a.jsonl", "--check")
        assert code == 0
        assert "reference checks: OK" in capsys.readouterr().out

    def test_sample_subsets_grid(self, capsys):
        assert equeue_sim.main(
            ["--scenario", "gemm", "--sweep", "--sample", "3"]
        ) == 0
        assert "3 points" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["--sweep"],  # requires --scenario
            ["--scenario", "gemm", "--journal", "x"],  # requires --sweep
            ["--scenario", "gemm", "--sweep-out", "x"],
            ["--scenario", "gemm", "--sweep", "--resume"],  # needs --journal
            ["--scenario", "gemm", "--sweep", "--trace", "x"],
            ["--scenario", "gemm", "--sweep", "--stats-json", "x"],
            ["--scenario", "gemm", "--sample", "-1", "--sweep"],
        ],
    )
    def test_flag_validation(self, argv, capsys):
        with pytest.raises(SystemExit) as info:
            equeue_sim.main(argv)
        assert info.value.code == 2

    def test_jobs_allowed_with_sweep(self, tmp_path, capsys):
        code, _ = _sweep_out(tmp_path, "a.jsonl", "--jobs", "2")
        assert code == 0


class TestSigtermResume:
    def test_sigterm_drains_and_resume_completes(
        self, tmp_path, capsys, monkeypatch
    ):
        reference = tmp_path / "reference.jsonl"
        assert equeue_sim.main(
            ["--scenario", "gemm", "--sweep", "--sweep-out", str(reference)]
        ) == 0
        capsys.readouterr()

        journal = tmp_path / "sweep.journal"
        real_worker = sweep_module._scenario_sweep_worker

        def slowed(payload):
            time.sleep(0.15)
            return real_worker(payload)

        monkeypatch.setattr(sweep_module, "_scenario_sweep_worker", slowed)
        killer = threading.Timer(
            0.4, os.kill, (os.getpid(), signal.SIGTERM)
        )
        killer.start()
        try:
            code = equeue_sim.main(
                ["--scenario", "gemm", "--sweep", "--journal", str(journal)]
            )
        finally:
            killer.cancel()
        assert code == 3
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "--resume" in err
        _, points, _, _ = load_journal(journal)
        assert 0 < len(points) < 12  # partial progress was checkpointed

        monkeypatch.setattr(
            sweep_module, "_scenario_sweep_worker", real_worker
        )
        resumed_out = tmp_path / "resumed.jsonl"
        code = equeue_sim.main(
            [
                "--scenario", "gemm", "--sweep",
                "--journal", str(journal), "--resume",
                "--sweep-out", str(resumed_out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "resumed from journal:" in stdout
        # The headline contract: interrupted + resumed == uninterrupted.
        assert resumed_out.read_bytes() == reference.read_bytes()

    def test_resume_mismatched_journal_fails_cleanly(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "sweep.journal"
        assert equeue_sim.main(
            ["--scenario", "gemm", "--sweep", "--journal", str(journal)]
        ) == 0
        code = equeue_sim.main(
            [
                "--scenario", "gemm", "--sweep", "--seed", "9",
                "--journal", str(journal), "--resume",
            ]
        )
        assert code == 1
        assert "header does not match" in capsys.readouterr().err
