"""Tests for the equeue-opt / equeue-sim command-line drivers."""

import json

import pytest

from repro import ir
from repro.dialects import linalg, memref
from repro.dialects.equeue import EQueueBuilder
from repro.tools import equeue_opt, equeue_sim


@pytest.fixture
def program_file(tmp_path):
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    eq = EQueueBuilder(builder)
    kernel = eq.create_proc("MAC", name="kernel")
    mem = eq.create_mem("Register", 16, ir.i32, name="regs")
    buf = eq.alloc(mem, [4], ir.i32, name="buf")
    start = eq.control_start()

    def body(b, buf_arg):
        inner = EQueueBuilder(b)
        data = inner.read(buf_arg)
        out = inner.op("mac", [data, data, data], [data.type])[0]
        inner.write(out, buf_arg)

    done, = eq.launch(start, kernel, args=[buf], body=body, label="step")
    eq.await_(done)
    path = tmp_path / "program.mlir"
    path.write_text(ir.print_op(module))
    return path


@pytest.fixture
def conv_file(tmp_path):
    module = ir.create_module()
    builder = ir.Builder(ir.InsertionPoint.at_end(module.body))
    eq = EQueueBuilder(builder)
    eq.create_proc("ARMr5", name="kernel")
    eq.create_mem("SRAM", 4096, ir.i32, name="sram")
    ifmap = memref.alloc(builder, [1, 4, 4], ir.i32)
    weight = memref.alloc(builder, [1, 1, 2, 2], ir.i32)
    ofmap = memref.alloc(builder, [1, 3, 3], ir.i32)
    linalg.conv2d(builder, ifmap, weight, ofmap)
    path = tmp_path / "conv.mlir"
    path.write_text(ir.print_op(module))
    return path


class TestEqueueOpt:
    def test_roundtrip_noop(self, program_file, capsys):
        assert equeue_opt.main([str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "equeue.launch" in out

    def test_pipeline_applies(self, conv_file, capsys):
        code = equeue_opt.main(
            [
                str(conv_file),
                "--pipeline",
                "convert-linalg-to-affine-loops,equeue-read-write,"
                "allocate-buffer{memory=sram},launch{proc=kernel}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "equeue.launch" in out
        assert "linalg.conv2d" not in out

    def test_list_passes(self, capsys):
        assert equeue_opt.main(["--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "equeue-read-write" in out
        assert "split-launch" in out

    def test_verify_only_quiet(self, program_file, capsys):
        assert equeue_opt.main([str(program_file), "--verify-only"]) == 0
        assert capsys.readouterr().out == ""

    def test_output_file(self, program_file, tmp_path, capsys):
        out_path = tmp_path / "out.mlir"
        assert equeue_opt.main([str(program_file), "-o", str(out_path)]) == 0
        assert "equeue.launch" in out_path.read_text()

    def test_bad_input_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.mlir"
        bad.write_text("not mlir at all %%%")
        assert equeue_opt.main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_pipeline_reports_error(self, program_file, capsys):
        assert (
            equeue_opt.main([str(program_file), "--pipeline", "no-such-pass"])
            == 1
        )
        assert "unknown pass" in capsys.readouterr().err


class TestEqueueSim:
    def test_summary_printed(self, program_file, capsys):
        assert equeue_sim.main([str(program_file)]) == 0
        out = capsys.readouterr().out
        assert "simulated runtime" in out
        assert "1 cycles" in out

    def test_scheduler_flag_matches_default(self, program_file, capsys):
        """--scheduler heap is the escape hatch: identical summary output
        (timing lines aside) to the default event-wheel scheduler."""

        def summary_lines(argv):
            assert equeue_sim.main(argv) == 0
            out = capsys.readouterr().out
            return [
                line
                for line in out.splitlines()
                if not line.startswith(
                    ("simulator execution time", "scheduler tiers")
                )
            ]

        wheel = summary_lines([str(program_file)])
        heap = summary_lines([str(program_file), "--scheduler", "heap"])
        assert wheel == heap

    def test_bad_scheduler_choice_rejected(self, program_file, capsys):
        with pytest.raises(SystemExit):
            equeue_sim.main([str(program_file), "--scheduler", "quantum"])
        assert "invalid choice" in capsys.readouterr().err

    def test_trace_written(self, program_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert equeue_sim.main(
            [str(program_file), "--trace", str(trace_path)]
        ) == 0
        events = json.loads(trace_path.read_text())
        assert any(event["name"] == "step" for event in events)

    def test_pipeline_then_simulate(self, conv_file, capsys):
        code = equeue_sim.main(
            [
                str(conv_file),
                "--pipeline",
                "convert-linalg-to-affine-loops,equeue-read-write,"
                "allocate-buffer{memory=sram},launch{proc=kernel}",
            ]
        )
        assert code == 0
        assert "simulated runtime" in capsys.readouterr().out

    def test_error_path(self, tmp_path, capsys):
        bad = tmp_path / "bad.mlir"
        bad.write_text("((((")
        assert equeue_sim.main([str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_inputs_npz_and_dump_buffer(self, program_file, tmp_path, capsys):
        import numpy as np

        npz = tmp_path / "inputs.npz"
        np.savez(npz, buf=np.array([1, 2, 3, 4], np.int32))
        code = equeue_sim.main(
            [str(program_file), "--inputs", str(npz), "--dump-buffer", "buf"]
        )
        assert code == 0
        out = capsys.readouterr().out
        # buf held x; the program computed x*x + x into it.
        assert "buf = [2, 6, 12, 20]" in out

    def test_dump_unknown_buffer_errors(self, program_file, capsys):
        assert (
            equeue_sim.main([str(program_file), "--dump-buffer", "nope"]) == 1
        )
        assert "no buffer named" in capsys.readouterr().err

    def test_multi_input_batch_preserves_order(self, program_file, capsys):
        """Multiple inputs simulate as a batch; summaries print in input
        order with per-file headers, identically for --jobs 2."""
        argv = [str(program_file), str(program_file), "--jobs", "2"]
        assert equeue_sim.main(argv) == 0
        out = capsys.readouterr().out
        assert out.count(f"== {program_file} ==") == 2
        assert out.count("simulated runtime") == 2
        serial = equeue_sim.main([str(program_file), str(program_file)])
        assert serial == 0

        def semantic(text):  # everything but the wall-clock line
            return [
                line for line in text.splitlines()
                if not line.startswith("simulator execution time")
            ]

        assert semantic(capsys.readouterr().out) == semantic(out)

    def test_multi_input_trace_rejected(self, program_file, tmp_path, capsys):
        code = equeue_sim.main(
            [str(program_file), str(program_file),
             "--trace", str(tmp_path / "t.json")]
        )
        assert code == 1
        assert "--trace supports a single input" in capsys.readouterr().err

    def test_stats_json_written(self, program_file, tmp_path, capsys):
        """--stats-json writes the canonical result record: the same
        shape the service store blobs and equeue-serve responses use."""
        stats_path = tmp_path / "stats.json"
        code = equeue_sim.main(
            [str(program_file), "--stats-json", str(stats_path)]
        )
        assert code == 0
        assert f"stats written to {stats_path}" in capsys.readouterr().out
        record = json.loads(stats_path.read_text())
        assert sorted(record) == ["checked", "cycles", "summary", "truncated"]
        assert record["cycles"] == 1
        assert record["truncated"] is False
        assert record["checked"] is None  # no oracle on raw .mlir inputs
        from repro.sim.profiling import ProfilingSummary

        summary = ProfilingSummary.from_dict(record["summary"])
        assert summary.cycles == 1
        assert summary.to_dict() == record["summary"]

    def test_multi_input_stats_json_rejected(
        self, program_file, tmp_path, capsys
    ):
        code = equeue_sim.main(
            [str(program_file), str(program_file),
             "--stats-json", str(tmp_path / "s.json")]
        )
        assert code == 1
        assert (
            "--stats-json supports a single input" in capsys.readouterr().err
        )

    def test_stats_json_write_failure_reports_cleanly(
        self, program_file, capsys
    ):
        code = equeue_sim.main(
            [str(program_file), "--stats-json", "/nonexistent-dir/s.json"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "equeue-sim: error:" in captured.err
        assert "Traceback" not in captured.err

    def test_multi_input_error_reported_per_file(self, program_file,
                                                 tmp_path, capsys):
        bad = tmp_path / "bad.mlir"
        bad.write_text("((((")
        assert equeue_sim.main([str(program_file), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "simulated runtime" in captured.out  # good file still ran
        assert "error" in captured.err

    def test_trace_write_failure_reports_cleanly(self, program_file, capsys):
        """A bad --trace path exits 1 with a message, not a traceback
        (regression: the trace write used to escape the error boundary)."""
        code = equeue_sim.main(
            [str(program_file), "--trace", "/nonexistent-dir/t.json"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "equeue-sim: error:" in captured.err
        assert "Traceback" not in captured.err

    def test_negative_max_cycles_rejected_via_argparse(
        self, program_file, capsys
    ):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main([str(program_file), "--max-cycles", "-3"])
        assert excinfo.value.code == 2
        assert "--max-cycles" in capsys.readouterr().err

    def test_shipped_toy_accelerator_program(self, capsys, tmp_path):
        """The .mlir file shipped under examples/programs simulates through
        the CLI, including its leading // comments."""
        from pathlib import Path

        import numpy as np

        shipped = (
            Path(__file__).resolve().parents[2]
            / "examples" / "programs" / "toy_accelerator.mlir"
        )
        npz = tmp_path / "in.npz"
        np.savez(npz, sram_buf=np.array([1, 2, 3, 4], np.int32))
        code = equeue_sim.main(
            [str(shipped), "--inputs", str(npz), "--dump-buffer", "buf0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "5 cycles" in out          # 4-cycle DMA copy + 1-cycle MAC
        assert "buf0 = [2, 6, 12, 20]" in out


class TestEqueueSimScenarios:
    """The --scenario / --list-scenarios registry surface."""

    def test_list_scenarios(self, capsys):
        assert equeue_sim.main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "available scenarios:" in out
        for name in ("systolic", "fir", "pipeline", "gemm", "mesh"):
            assert name in out
        assert "defaults:" in out

    def test_scenario_runs_and_checks(self, capsys):
        code = equeue_sim.main(
            ["--scenario", "gemm:k=8,tile_k=4", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario gemm" in out
        assert "simulated runtime" in out
        assert "reference check: OK" in out

    def test_scenario_stats_json_includes_checked_oracle(
        self, tmp_path, capsys
    ):
        """--stats-json on a scenario run records the oracle's checked
        stats alongside the summary (the full service record shape)."""
        stats_path = tmp_path / "stats.json"
        code = equeue_sim.main(
            ["--scenario", "gemm:k=8,tile_k=4", "--seed", "3",
             "--stats-json", str(stats_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reference check: OK" in out
        record = json.loads(stats_path.read_text())
        assert record["checked"]["output"] == "A@B"
        assert record["checked"]["cycles"] == record["cycles"]
        from repro.sim.profiling import ProfilingSummary

        assert (
            ProfilingSummary.from_dict(record["summary"]).cycles
            == record["cycles"]
        )

    def test_scenario_respects_engine_flags(self, capsys):
        """--scheduler heap + --mode interpret/codegen produce the same
        semantic summary as the default backends (the CLI-level
        differential)."""

        def semantic(argv):
            assert equeue_sim.main(argv) == 0
            return [
                line
                for line in capsys.readouterr().out.splitlines()
                if not line.startswith(
                    ("simulator execution time", "scheduler tiers",
                     "block plans", "vectorized loops", "codegen blocks")
                )
            ]

        base = ["--scenario", "mesh:rows=2,cols=2,rounds=2"]
        assert semantic(base) == semantic(
            base + ["--scheduler", "heap", "--mode", "interpret"]
        )
        assert semantic(base) == semantic(base + ["--mode", "codegen"])

    def test_unknown_scenario_exits_cleanly_listing_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main(["--scenario", "warp-drive"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'warp-drive'" in err
        for name in ("systolic", "fir", "pipeline", "gemm", "mesh"):
            assert name in err
        assert "Traceback" not in err

    def test_bad_override_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main(["--scenario", "gemm:m=wide"])
        assert excinfo.value.code == 2
        assert "not an integer" in capsys.readouterr().err

    def test_invalid_config_combination_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main(["--scenario", "gemm:k=10,tile_k=4"])
        assert excinfo.value.code == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_scenario_with_input_files_rejected(self, program_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main([str(program_file), "--scenario", "mesh"])
        assert excinfo.value.code == 2
        assert "--scenario replaces input files" in capsys.readouterr().err

    def test_scenario_trace_and_dump_buffer(self, tmp_path, capsys):
        import json

        trace_path = tmp_path / "gemm_trace.json"
        code = equeue_sim.main(
            [
                "--scenario", "gemm:k=8",
                "--trace", str(trace_path),
                "--dump-buffer", "c_out",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "c_out = " in out
        events = json.loads(trace_path.read_text())
        assert any("gemm" in event["name"] for event in events)

    def test_scenario_truncation_skips_check(self, capsys):
        code = equeue_sim.main(
            ["--scenario", "mesh:rows=2,cols=2", "--max-cycles", "3"]
        )
        assert code == 0
        assert "reference check: skipped" in capsys.readouterr().out

    def test_scenario_rejects_file_only_flags(self, capsys):
        for extra in (
            ["--pipeline", "equeue-read-write"],
            ["--inputs", "data.npz"],
            ["--jobs", "2"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                equeue_sim.main(["--scenario", "mesh"] + extra)
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert extra[0] in err


class TestExecutionModeFlag:
    """--mode and the deprecated --interpret alias: one validation path."""

    def _semantic(self, capsys, argv):
        assert equeue_sim.main(argv) == 0
        return [
            line
            for line in capsys.readouterr().out.splitlines()
            if not line.startswith(
                ("simulator execution time", "scheduler tiers",
                 "block plans", "vectorized loops", "codegen blocks")
            )
        ]

    def test_all_modes_semantically_identical(self, program_file, capsys):
        base = self._semantic(capsys, [str(program_file)])
        for mode in ("interpret", "plan", "codegen"):
            assert base == self._semantic(
                capsys, [str(program_file), "--mode", mode]
            ), mode

    def test_interpret_alias_warns_and_matches_mode(
        self, program_file, capsys
    ):
        with pytest.warns(DeprecationWarning, match="--mode interpret"):
            aliased = self._semantic(capsys, [str(program_file), "--interpret"])
        explicit = self._semantic(
            capsys, [str(program_file), "--mode", "interpret"]
        )
        assert aliased == explicit

    def test_alias_agreeing_with_mode_accepted(self, program_file, capsys):
        with pytest.warns(DeprecationWarning):
            code = equeue_sim.main(
                [str(program_file), "--interpret", "--mode", "interpret"]
            )
        assert code == 0

    def test_mode_conflict_rejected(self, program_file, capsys):
        for mode in ("plan", "codegen"):
            with pytest.raises(SystemExit) as excinfo:
                equeue_sim.main(
                    [str(program_file), "--interpret", "--mode", mode]
                )
            assert excinfo.value.code == 2
            err = capsys.readouterr().err
            assert "--interpret conflicts with --mode" in err
            assert "Traceback" not in err

    def test_bad_mode_choice_rejected(self, program_file, capsys):
        with pytest.raises(SystemExit) as excinfo:
            equeue_sim.main([str(program_file), "--mode", "turbo"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize("mode", ["interpret", "plan", "codegen"])
    def test_stats_json_reports_resolved_mode(self, tmp_path, capsys, mode):
        stats_path = tmp_path / "stats.json"
        code = equeue_sim.main(
            ["--scenario", "fir", "--mode", mode,
             "--stats-json", str(stats_path)]
        )
        assert code == 0
        record = json.loads(stats_path.read_text())
        assert record["summary"]["execution_mode"] == mode
        if mode == "codegen":
            assert record["summary"]["blocks_codegenned"] > 0

    def test_stats_json_alias_resolves_to_interpret(self, tmp_path, capsys):
        stats_path = tmp_path / "stats.json"
        with pytest.warns(DeprecationWarning):
            code = equeue_sim.main(
                ["--scenario", "fir", "--interpret",
                 "--stats-json", str(stats_path)]
            )
        assert code == 0
        record = json.loads(stats_path.read_text())
        assert record["summary"]["execution_mode"] == "interpret"

    def test_sweep_accepts_mode(self, capsys):
        code = equeue_sim.main(
            ["--scenario", "fir", "--sweep", "--sample", "2",
             "--mode", "codegen", "--check"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reference checks: OK" in out
