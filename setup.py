"""Packaging (classic setup.py).

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs fail; this classic setup lets ``pip install -e .
--no-build-isolation`` fall back to the develop path.  It is also where
the console entry points live: the ``equeue-opt`` / ``equeue-sim``
compiler-and-simulator drivers and the ``equeue-serve`` simulation
service (see ``docs/serving.md``).
"""

from setuptools import find_packages, setup

setup(
    name="equeue-repro",
    version="0.5.0",
    description=(
        "Compiler-driven simulation of reconfigurable hardware "
        "accelerators (EQueue dialect reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={
        "console_scripts": [
            "equeue-opt = repro.tools.equeue_opt:main",
            "equeue-sim = repro.tools.equeue_sim:main",
            "equeue-serve = repro.tools.equeue_serve:main",
        ]
    },
)
