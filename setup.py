"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs fail; this shim lets ``pip install -e . --no-build-isolation``
fall back to the classic develop path.
"""

from setuptools import setup

setup()
