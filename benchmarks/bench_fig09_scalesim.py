"""Fig. 9: EQueue DES vs SCALE-Sim on a 4x4 WS systolic array.

(a) cycles vs ifmap size (fixed 2x2x3 weights, N=1)
(b) average SRAM ofmap write bandwidth vs ifmap size
(c) cycles vs weight size (fixed larger ifmap, C=3)
(d) average SRAM ofmap write bandwidth vs weight size

The paper's claim reproduced here: the general EQueue simulation matches
the dedicated SCALE-Sim model point-for-point.
"""

import numpy as np
import pytest

from repro.baselines import ScaleSimConfig, run_scalesim
from repro.dialects.linalg import ConvDims
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.sim import simulate
from repro.sim.batch import SweepRunner, measure_systolic_point

from conftest import FULL_SWEEP, SWEEP_JOBS, conv_inputs, emit

IFMAP_SIZES = [2, 4, 8, 16, 32] if FULL_SWEEP else [2, 4, 8, 16]
WEIGHT_SIZES = [2, 4, 8, 16] if FULL_SWEEP else [2, 4, 8]
FIXED_IFMAP = 32 if FULL_SWEEP else 16
INPUT_SEED = 7


def _series(dims_list, labels):
    """DES-vs-SCALE-Sim rows for a list of conv dims, with the DES points
    dispatched through the batch runner (parallel across sizes)."""
    configs = [SystolicConfig("WS", 4, 4, dims) for dims in dims_list]
    runner = SweepRunner(jobs=SWEEP_JOBS)
    measured = runner.map(
        measure_systolic_point, [(cfg, INPUT_SEED) for cfg in configs]
    )
    rows = []
    for label, dims, point in zip(labels, dims_list, measured):
        scalesim = run_scalesim(ScaleSimConfig("WS", 4, 4, dims))
        rows.append(
            (
                label,
                point["cycles"],
                scalesim.cycles,
                point["avg_ofmap_write_bw"],
                scalesim.avg_ofmap_write_bw,
            )
        )
    return rows


def _ifmap_series():
    dims_list = [
        ConvDims(n=1, c=3, h=size, w=size, fh=2, fw=2)
        for size in IFMAP_SIZES
    ]
    return _series(dims_list, IFMAP_SIZES)


def _weight_series():
    dims_list = [
        ConvDims(n=1, c=3, h=FIXED_IFMAP, w=FIXED_IFMAP, fh=filt, fw=filt)
        for filt in WEIGHT_SIZES
    ]
    return _series(dims_list, WEIGHT_SIZES)


def test_fig9a_b(benchmark):
    """Vary ifmap: cycles (9a) and ofmap write bandwidth (9b)."""
    rows = benchmark.pedantic(_ifmap_series, rounds=1, iterations=1)
    lines = [
        f"{'ifmap':>6} {'EQueue cyc':>11} {'SCALE-Sim cyc':>14} "
        f"{'EQueue BW':>10} {'SCALE-Sim BW':>13}"
    ]
    for size, cycles, ss_cycles, bw, ss_bw in rows:
        lines.append(
            f"{size:>4}x{size:<2} {cycles:>10} {ss_cycles:>14} "
            f"{bw:>10.3f} {ss_bw:>13.3f}"
        )
        assert cycles == ss_cycles, "EQueue must match SCALE-Sim (Fig. 9a)"
        assert bw == pytest.approx(ss_bw), "BW must match (Fig. 9b)"
    emit("fig09ab_ifmap_sweep", lines)


def test_fig9c_d(benchmark):
    """Vary weights: cycles (9c) and ofmap write bandwidth (9d)."""
    rows = benchmark.pedantic(_weight_series, rounds=1, iterations=1)
    lines = [
        f"{'weight':>7} {'EQueue cyc':>11} {'SCALE-Sim cyc':>14} "
        f"{'EQueue BW':>10} {'SCALE-Sim BW':>13}"
    ]
    for filt, cycles, ss_cycles, bw, ss_bw in rows:
        lines.append(
            f"{filt:>4}x{filt:<2} {cycles:>10} {ss_cycles:>14} "
            f"{bw:>10.3f} {ss_bw:>13.3f}"
        )
        assert cycles == ss_cycles, "EQueue must match SCALE-Sim (Fig. 9c)"
        assert bw == pytest.approx(ss_bw), "BW must match (Fig. 9d)"
    emit("fig09cd_weight_sweep", lines)


def test_fig9_largest_point_simulation(benchmark, rng):
    """Benchmark the single most expensive Fig. 9 DES run (engine cost)."""
    size = IFMAP_SIZES[-1]
    dims = ConvDims(n=1, c=3, h=size, w=size, fh=2, fw=2)
    cfg = SystolicConfig("WS", 4, 4, dims)
    program = build_systolic_program(cfg)
    ifmap, weights = conv_inputs(dims, rng)
    inputs = program.prepare_inputs(ifmap, weights)

    def run():
        return simulate(program.module, inputs=inputs).cycles

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles == cfg.expected_cycles


np  # noqa: B018
