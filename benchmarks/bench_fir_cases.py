"""§VII case-study table: the four AI Engine FIR designs.

Regenerates the paper's in-text numbers (treated as a table):

=======  ===========================  ============  ==========
case     design                       paper EQueue  AIE sim
=======  ===========================  ============  ==========
case1    1 core, unlimited I/O        2048          2276
case2    16 cores, unlimited I/O      143           —
case3    16 cores, 32-bit streams     588 (79 wu)   —
case4    4 cores, 32-bit streams      538 (26 wu)   539
=======  ===========================  ============  ==========
"""

import numpy as np

from repro.baselines import AIE_REFERENCE
from repro.generators.fir import PAPER_CASES, build_fir_program, fir_reference
from repro.sim import simulate

from conftest import emit


def _run_all(rng):
    results = {}
    for case, cfg in PAPER_CASES.items():
        samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(np.int32)
        coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
        program = build_fir_program(cfg)
        result = simulate(
            program.module, inputs=program.prepare_inputs(samples, coeffs)
        )
        output = program.extract_output(result)
        expected = fir_reference(samples, coeffs, cfg.samples)
        results[case] = (result.cycles, bool(np.array_equal(output, expected)),
                         cfg.expected_warmup)
    return results


def test_fir_case_table(benchmark, rng):
    results = benchmark.pedantic(lambda: _run_all(rng), rounds=1, iterations=1)
    lines = [
        f"{'case':6} {'measured':>9} {'paper':>7} {'AIE sim':>8} "
        f"{'warmup':>7} {'paper wu':>9} {'correct':>8}"
    ]
    for case, (cycles, correct, warmup) in results.items():
        reference = AIE_REFERENCE[case]
        lines.append(
            f"{case:6} {cycles:>9} {reference['equeue_paper'] or '-':>7} "
            f"{reference['aie_sim'] or '-':>8} {warmup:>7} "
            f"{reference['warmup_paper'] or '-':>9} "
            f"{'yes' if correct else 'NO':>8}"
        )
    emit("fir_cases_table", lines)

    assert results["case1"][0] == 2048
    assert results["case2"][0] == 143
    assert results["case3"][0] == 588
    paper4 = AIE_REFERENCE["case4"]["equeue_paper"]
    assert abs(results["case4"][0] - paper4) / paper4 < 0.005
    assert all(correct for _, correct, _ in results.values())
