"""§VI-C / §VII-F wall-clock comparison: generality costs simulation speed.

The paper reports SCALE-Sim needing at most 1.1 s on the Fig. 9 workloads
while the EQueue simulator needs up to 7.2 s — the price of a generic
event-driven engine.  This bench measures the same trade-off in this
repository, plus raw engine throughput (scheduler events per second).
"""

import time

from repro.baselines import ScaleSimConfig, run_scalesim
from repro.dialects.linalg import ConvDims
from repro.generators.systolic import SystolicConfig, build_systolic_program
from repro.sim import simulate

from conftest import FULL_SWEEP, conv_inputs, emit

SIZE = 32 if FULL_SWEEP else 16


def test_equeue_vs_scalesim_wallclock(benchmark, rng):
    dims = ConvDims(n=1, c=3, h=SIZE, w=SIZE, fh=2, fw=2)
    cfg = SystolicConfig("WS", 4, 4, dims)
    program = build_systolic_program(cfg)
    ifmap, weights = conv_inputs(dims, rng)
    inputs = program.prepare_inputs(ifmap, weights)

    result_holder = {}

    def run_des():
        result_holder["result"] = simulate(program.module, inputs=inputs)
        return result_holder["result"].cycles

    benchmark.pedantic(run_des, rounds=1, iterations=1)
    des_result = result_holder["result"]
    des_time = des_result.summary.execution_time_s

    started = time.perf_counter()
    scalesim = run_scalesim(ScaleSimConfig("WS", 4, 4, dims))
    scalesim_time = time.perf_counter() - started

    events = des_result.summary.scheduler_events
    throughput = events / des_time if des_time else 0.0
    summary = des_result.summary
    lines = [
        f"workload: {SIZE}x{SIZE} ifmap, 2x2x3 weights, 4x4 WS array",
        f"EQueue DES:  {des_time:8.3f} s "
        f"({des_result.cycles} cycles, {events} events, "
        f"{throughput:,.0f} events/s)",
        f"block plans: {summary.plans_compiled} compiled, "
        f"{summary.plan_cache_hits} cache hits",
        f"SCALE-Sim:   {scalesim_time:8.5f} s ({scalesim.cycles} cycles)",
        f"slowdown of the general simulator: {des_time / max(scalesim_time, 1e-9):,.0f}x",
        "(the paper reports 7.2 s vs 1.1 s on its largest Fig. 9 point)",
    ]
    emit("engine_speed", lines)

    assert des_result.cycles == scalesim.cycles
    assert des_time > scalesim_time  # generality costs wall-clock time
