"""Fig. 11: metrics along the four lowering stages.

For convolutions H=W in {4, 8, 16(, 32)} with Fh=Fw=3, C=3, N=4 on a 4x4
PE array (the paper's setup), report per stage:

(a) simulator execution (wall-clock) time
(b) simulated runtime in cycles
(c) read bandwidth (SRAM and register)
(d) write bandwidth (SRAM and register)
"""

from repro.dialects.linalg import ConvDims
from repro.generators.pipeline import STAGES, LoweringPipeline

from conftest import FULL_SWEEP, emit

SIZES = [4, 8, 16, 32] if FULL_SWEEP else [4, 8, 16]


def _run_workload(size):
    pipeline = LoweringPipeline(
        dims=ConvDims(n=4, c=3, h=size, w=size, fh=3, fw=3),
        array_height=4,
        array_width=4,
        dataflow="WS",
    )
    return pipeline.run_all()


def test_fig11_all_metrics(benchmark):
    """One pass computes all four Fig. 11 panels."""
    all_results = benchmark.pedantic(
        lambda: {size: _run_workload(size) for size in SIZES},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'H=W':>4} {'stage':10} {'exec time':>10} {'cycles':>9} "
        f"{'SRAM rdBW':>10} {'SRAM wrBW':>10} {'reg rdBW':>9} {'reg wrBW':>9}"
    ]
    for size, results in all_results.items():
        for stage in STAGES:
            r = results[stage]
            lines.append(
                f"{size:>4} {stage:10} {r.execution_time_s:>9.3f}s "
                f"{r.cycles:>9} {r.sram_read_bw:>10.3f} "
                f"{r.sram_write_bw:>10.3f} {r.register_read_bw:>9.3f} "
                f"{r.register_write_bw:>9.3f}"
            )
    emit("fig11_lowering_stages", lines)

    # Shape assertions on every workload (the paper's qualitative claims).
    for size, results in all_results.items():
        cycles = [results[stage].cycles for stage in STAGES]
        assert cycles == sorted(cycles, reverse=True), (size, cycles)
        assert results["affine"].sram_read_bw > results["linalg"].sram_read_bw
        assert results["linalg"].register_read_bw == 0
        assert results["reassign"].register_read_bw > 0
