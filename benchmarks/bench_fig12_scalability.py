"""Fig. 12: scalability and dataflow characteristics over the §VI-E sweep.

(a) simulator execution time vs simulated cycles (DES points, 3 dataflows)
(b) SRAM ofmap write bandwidth vs cycles (bandwidth/latency trade-off)
(c-e) loop iterations vs cycles per dataflow (the ⌈D1/Ah⌉x⌈D2/Aw⌉ law)

The full 4,050-point space is evaluated with the analytical model (the
test suite proves DES == model on sampled points); a deterministic DES
subsample provides the wall-clock scatter of panel (a).
"""

import numpy as np

from repro.analysis import paper_sweep_spec, run_sweep

from conftest import FULL_SWEEP, SWEEP_JOBS, emit

DES_SAMPLE = 24 if FULL_SWEEP else 10
DES_MAX_CYCLES = 6000 if FULL_SWEEP else 2500


def test_fig12a_execution_time_vs_cycles(benchmark):
    spec = paper_sweep_spec()
    points = benchmark.pedantic(
        # Panel (a) plots *measured* per-point DES wall-clock, so the
        # caches stay off (a replica's copied execution_time_s or a
        # warm-plan run would distort the figure); sharding still
        # applies — concurrent points add contention noise to the
        # per-point timings, which the rank-correlation assertion
        # below tolerates (EQUEUE_SWEEP_JOBS=1 for clean timings).
        lambda: run_sweep(
            spec,
            use_des=True,
            sample=DES_SAMPLE,
            max_cycles=DES_MAX_CYCLES,
            jobs=SWEEP_JOBS,
            compile_cache=False,
            reuse_results=False,
        ),
        rounds=1,
        iterations=1,
    )
    assert points, "DES sample is empty"
    lines = [f"{'dataflow':9} {'cycles':>8} {'exec time (s)':>14}"]
    for point in sorted(points, key=lambda p: p.cycles):
        lines.append(
            f"{point.dataflow:9} {point.cycles:>8} "
            f"{point.execution_time_s:>14.4f}"
        )
    emit("fig12a_exec_time_vs_cycles", lines)
    # Execution time grows with cycle count (rank correlation).
    cycles = np.array([p.cycles for p in points], float)
    times = np.array([p.execution_time_s for p in points], float)
    order = np.argsort(cycles)
    big = times[order[-3:]].mean()
    small = times[order[:3]].mean()
    assert big > small, "wall-clock must grow with simulated cycles"
    # DES equals the analytical model on every simulated point.
    for point in points:
        assert point.cycles == point.config.expected_cycles


def test_fig12b_bandwidth_vs_cycles(benchmark):
    spec = paper_sweep_spec()
    points = benchmark.pedantic(
        lambda: run_sweep(spec, use_des=False), rounds=1, iterations=1
    )
    # Persist the full sweep for external plotting of the Fig. 12 scatter.
    from repro.analysis import to_csv

    from conftest import OUT_DIR

    OUT_DIR.mkdir(exist_ok=True)
    to_csv(points, OUT_DIR / "fig12_sweep.csv")
    by_dataflow = {"WS": [], "IS": [], "OS": []}
    for point in points:
        by_dataflow[point.dataflow].append(point)
    lines = [
        f"{'dataflow':9} {'points':>7} {'median cycles':>14} "
        f"{'mean ofmap wr BW':>17}"
    ]
    means = {}
    for dataflow, subset in by_dataflow.items():
        mean_bw = float(np.mean([p.peak_write_bw_x_portion for p in subset]))
        means[dataflow] = mean_bw
        lines.append(
            f"{dataflow:9} {len(subset):>7} "
            f"{np.median([p.cycles for p in subset]):>14.0f} {mean_bw:>17.3f}"
        )
    lines.append(
        "ordering (our model): OS accumulates locally -> lowest ofmap "
        "write BW; WS streams psums every cycle -> highest."
    )
    emit("fig12b_bandwidth", lines)
    assert means["OS"] < means["IS"] < means["WS"]


def test_fig12c_d_e_loop_iteration_law(benchmark):
    spec = paper_sweep_spec()
    points = benchmark.pedantic(
        lambda: run_sweep(spec, use_des=False), rounds=1, iterations=1
    )
    lines = []
    for dataflow in ("WS", "IS", "OS"):
        subset = [p for p in points if p.dataflow == dataflow]
        iterations = np.array([p.loop_iterations for p in subset], float)
        cycles = np.array([p.cycles for p in subset], float)
        correlation = float(
            np.corrcoef(np.log(iterations + 1), np.log(cycles))[0, 1]
        )
        lines.append(
            f"{dataflow}: {len(subset)} points, "
            f"log-log corr(iterations, cycles) = {correlation:.3f}"
        )
        assert correlation > 0.6
    lines.append(
        "cycles track ceil(D1/Ah)*ceil(D2/Aw) per dataflow (Fig. 12c-e)."
    )
    emit("fig12cde_iteration_law", lines)
