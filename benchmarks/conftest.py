"""Shared helpers for the figure-reproduction benchmarks.

Every bench prints the series/rows corresponding to one paper figure or
table and also writes them to ``benchmarks/out/`` so the data survives
pytest's output capture.  Set ``EQUEUE_FULL_SWEEP=1`` to run the paper's
full problem sizes (slower).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

import repro.dialects  # noqa: F401

OUT_DIR = Path(__file__).parent / "out"

FULL_SWEEP = bool(int(os.environ.get("EQUEUE_FULL_SWEEP", "0")))

# Worker processes for DES sweeps: EQUEUE_SWEEP_JOBS overrides; the
# default uses up to 4 of the usable CPUs (1 CPU = serial, no pool).
def _sweep_jobs() -> int:
    from repro.sim.batch import default_jobs

    override = int(os.environ.get("EQUEUE_SWEEP_JOBS", "0"))
    return override or min(4, default_jobs())


SWEEP_JOBS = _sweep_jobs()


def emit(name: str, lines) -> None:
    """Print a figure's data and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def conv_inputs(dims, rng):
    from repro.sim.batch import sample_conv_inputs

    return sample_conv_inputs(dims, rng)
