"""Ablations of the design choices called out in DESIGN.md.

1. **Connection modeling** — sweep the FIR cascade bandwidth from
   unconstrained to 2 B/cycle and measure how much the bandwidth model
   changes reported cycles (the §VII case 2 → 3 transition, generalized).
2. **Memory ports** — the systolic stationary-SRAM port count vs fold
   load time (single-ported loads serialize; the paper's banked model
   loads one row per cycle).
3. **Coarse-model constant** — sensitivity of the Linalg-stage runtime to
   the first-order per-MAC cost, relative to the measured Affine stage
   (why 7 cycles/MAC is the conservative choice).
4. **Interpreted vs compiled engine** — the block-plan compiler
   (``EngineOptions.compile_plans``) against the reference interpreter on
   the engine-speed workload: identical cycles/events, reported speedup.
"""

import numpy as np

from repro.dialects.linalg import ConvDims
from repro.generators.fir import FIRConfig, build_fir_program, fir_reference
from repro.generators.pipeline import LoweringPipeline
from repro.sim import EngineOptions, simulate

from conftest import emit


def test_ablation_connection_bandwidth(benchmark, rng):
    """Bandwidth model on/off and strength: 16-core FIR pipeline."""

    def sweep():
        rows = []
        for bandwidth in (None, 16, 8, 4, 2):
            cfg = FIRConfig(n_cores=16, bandwidth=bandwidth, samples=256)
            samples = rng.integers(-8, 9, cfg.samples + cfg.taps).astype(
                np.int32
            )
            coeffs = rng.integers(-4, 5, cfg.taps).astype(np.int32)
            program = build_fir_program(cfg)
            result = simulate(
                program.module, inputs=program.prepare_inputs(samples, coeffs)
            )
            correct = np.array_equal(
                program.extract_output(result),
                fir_reference(samples, coeffs, cfg.samples),
            )
            rows.append((bandwidth, result.cycles, cfg.expected_cycles, correct))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'bandwidth':>10} {'cycles':>8} {'model':>7} {'correct':>8}"]
    for bandwidth, cycles, model, correct in rows:
        label = "inf" if bandwidth is None else str(bandwidth)
        lines.append(
            f"{label:>10} {cycles:>8} {model:>7} "
            f"{'yes' if correct else 'NO':>8}"
        )
    emit("ablation_bandwidth", lines)
    cycles_by_bw = [cycles for _, cycles, _, _ in rows]
    # Tighter bandwidth monotonically slows the pipeline; the infinite
    # model underestimates the 2 B/cyc system by >4x.
    assert cycles_by_bw == sorted(cycles_by_bw)
    assert cycles_by_bw[-1] > 4 * cycles_by_bw[0]
    assert all(correct for *_, correct in rows)


def test_ablation_sram_ports(benchmark, rng):
    """Stationary-load time vs SRAM ports on the systolic array."""
    from repro.generators.systolic import SystolicConfig, build_systolic_program

    dims = ConvDims(n=4, c=3, h=8, w=8, fh=2, fw=2)

    def run(ports_factor):
        cfg = SystolicConfig("WS", 4, 4, dims)
        program = build_systolic_program(cfg)
        # Patch the stationary SRAM's port count before simulation.
        for op in program.module.walk():
            if (
                op.name == "equeue.create_mem"
                and op.results
                and op.results[0].name_hint == "stat_sram"
            ):
                op.set_attr("ports", ports_factor)
        ifmap = rng.integers(-3, 4, (3, 8, 8)).astype(np.int32)
        weights = rng.integers(-3, 4, (4, 3, 2, 2)).astype(np.int32)
        result = simulate(
            program.module, inputs=program.prepare_inputs(ifmap, weights)
        )
        return result.cycles

    def sweep():
        return {ports: run(ports) for ports in (1, 2, 4)}

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'SRAM ports':>11} {'total cycles':>13}"]
    for ports, total in cycles.items():
        lines.append(f"{ports:>11} {total:>13}")
    lines.append(
        "single-ported weight loads serialize the fold fill "
        "(Ah*Aw cycles instead of Ah)."
    )
    emit("ablation_sram_ports", lines)
    assert cycles[1] > cycles[2] > cycles[4]


def test_ablation_linalg_cost_constant(benchmark):
    """The coarse model must stay conservative w.r.t. the Affine stage."""
    pipeline = LoweringPipeline(dims=ConvDims(n=2, c=2, h=6, w=6, fh=3, fw=3))

    def sweep():
        affine_cycles = pipeline.run_stage("affine").cycles
        rows = []
        for per_mac in (4, 5, 6, 7, 8):
            module = pipeline.build_stage("linalg")
            ifmap, weight = pipeline.make_data()
            result = simulate(
                module,
                EngineOptions(linalg_mac_cycles=per_mac),
                inputs={"ifmap": ifmap, "weight": weight},
            )
            rows.append((per_mac, result.cycles, affine_cycles))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'cycles/MAC':>11} {'linalg cycles':>14} {'affine cycles':>14}"]
    for per_mac, linalg_cycles, affine_cycles in rows:
        marker = " <-- conservative" if linalg_cycles >= affine_cycles else ""
        lines.append(
            f"{per_mac:>11} {linalg_cycles:>14} {affine_cycles:>14}{marker}"
        )
    lines.append(
        "default = 7: the smallest integer constant that keeps the "
        "first-order estimate above the measured Affine stage (Fig. 11b's "
        "monotone runtime)."
    )
    emit("ablation_linalg_constant", lines)
    affine_cycles = rows[0][2]
    default = [cycles for per_mac, cycles, _ in rows if per_mac == 7][0]
    six = [cycles for per_mac, cycles, _ in rows if per_mac == 6][0]
    assert default > affine_cycles >= six


def test_ablation_interpreted_vs_compiled(benchmark, rng):
    """Block-plan compilation: same simulation, less wall-clock."""
    import time

    from repro.dialects.linalg import ConvDims as Dims
    from repro.generators.systolic import SystolicConfig, build_systolic_program

    dims = Dims(n=1, c=3, h=16, w=16, fh=2, fw=2)
    ifmap = rng.integers(-3, 4, (3, 16, 16)).astype(np.int32)
    weights = rng.integers(-3, 4, (1, 3, 2, 2)).astype(np.int32)

    def run(compile_plans: bool):
        program = build_systolic_program(SystolicConfig("WS", 4, 4, dims))
        inputs = program.prepare_inputs(ifmap, weights)
        started = time.perf_counter()
        result = simulate(
            program.module,
            EngineOptions(compile_plans=compile_plans),
            inputs=inputs,
        )
        elapsed = time.perf_counter() - started
        return result, elapsed

    def sweep():
        return {mode: run(mode) for mode in (False, True)}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    (interp, interp_s), (compiled, compiled_s) = (
        outcome[False], outcome[True]
    )
    events = interp.summary.scheduler_events
    speedup = interp_s / max(compiled_s, 1e-9)
    lines = [
        f"{'engine':>12} {'cycles':>8} {'events':>8} {'wall-clock':>11} "
        f"{'events/s':>12}",
        f"{'interpreted':>12} {interp.cycles:>8} {events:>8} "
        f"{interp_s:>10.3f}s {events / max(interp_s, 1e-9):>12,.0f}",
        f"{'compiled':>12} {compiled.cycles:>8} "
        f"{compiled.summary.scheduler_events:>8} {compiled_s:>10.3f}s "
        f"{compiled.summary.scheduler_events / max(compiled_s, 1e-9):>12,.0f}",
        f"speedup: {speedup:.2f}x "
        f"({compiled.summary.plans_compiled} plans, "
        f"{compiled.summary.plan_cache_hits} cache hits)",
    ]
    emit("ablation_engine_compile", lines)
    # Cycle-exactness: the compiled engine is an optimization, not a model.
    # (The wall-clock speedup is reported, not asserted — single-round
    # timings on shared CI runners are too noisy for a hard invariant;
    # the differential asserts above are the correctness check.)
    assert compiled.cycles == interp.cycles
    assert compiled.summary.scheduler_events == events
    for name in compiled.buffers:
        assert np.array_equal(
            compiled.buffers[name].array, interp.buffers[name].array
        ), name


def test_ablation_wheel_vs_heap(benchmark, rng):
    """Scheduler backends: the tiered event wheel vs the binary heap.

    Same simulation on both ``EngineOptions.scheduler`` backends —
    identical cycles, events, and buffers; the wheel serves the zero-delay
    resumes from its microtask ring and the short read/write latencies
    from calendar buckets instead of paying a heap push/pop per event.
    """
    import time

    from repro.dialects.linalg import ConvDims as Dims
    from repro.generators.systolic import SystolicConfig, build_systolic_program

    dims = Dims(n=1, c=3, h=16, w=16, fh=2, fw=2)
    ifmap = rng.integers(-3, 4, (3, 16, 16)).astype(np.int32)
    weights = rng.integers(-3, 4, (1, 3, 2, 2)).astype(np.int32)

    def run(scheduler: str):
        program = build_systolic_program(SystolicConfig("WS", 4, 4, dims))
        inputs = program.prepare_inputs(ifmap, weights)
        started = time.perf_counter()
        result = simulate(
            program.module,
            EngineOptions(scheduler=scheduler),
            inputs=inputs,
        )
        elapsed = time.perf_counter() - started
        return result, elapsed

    def sweep():
        # Discard a warmup round (imports, allocator and cache warmup),
        # then measure the wheel *first*: any residual warm-process bias
        # favors the heap row, making the reported speedup conservative.
        run("heap")
        return {mode: run(mode) for mode in ("wheel", "heap")}

    outcome = benchmark.pedantic(sweep, rounds=1, iterations=1)
    (heap, heap_s), (wheel, wheel_s) = outcome["heap"], outcome["wheel"]
    events = heap.summary.scheduler_events
    speedup = heap_s / max(wheel_s, 1e-9)
    tiers = wheel.summary
    lines = [
        f"{'scheduler':>10} {'cycles':>8} {'events':>8} {'wall-clock':>11} "
        f"{'events/s':>12}",
        f"{'heap':>10} {heap.cycles:>8} {events:>8} "
        f"{heap_s:>10.3f}s {events / max(heap_s, 1e-9):>12,.0f}",
        f"{'wheel':>10} {wheel.cycles:>8} "
        f"{tiers.scheduler_events:>8} {wheel_s:>10.3f}s "
        f"{tiers.scheduler_events / max(wheel_s, 1e-9):>12,.0f}",
        f"speedup: {speedup:.2f}x (wheel tiers: {tiers.microtask_events} "
        f"microtask, {tiers.wheel_events} wheel, {tiers.heap_events} heap)",
    ]
    emit("ablation_scheduler_backend", lines)
    # Bit-exactness: the event wheel is an optimization, not a model.
    # (Wall-clock is reported, not asserted — same noise rationale as the
    # interpreted-vs-compiled ablation above.)
    assert wheel.cycles == heap.cycles
    assert wheel.summary.scheduler_events == events
    assert (
        tiers.microtask_events + tiers.wheel_events + tiers.heap_events
        == tiers.scheduler_events
    )
    for name in wheel.buffers:
        assert np.array_equal(
            wheel.buffers[name].array, heap.buffers[name].array
        ), name
