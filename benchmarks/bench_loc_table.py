"""§VI-C implementation-effort table: LOC to implement and to switch
dataflows, SCALE-Sim vs the paper's EQueue generator vs this repository.

SCALE-Sim and paper numbers are quoted; ours are measured from the source
of :mod:`repro.generators.systolic`.  In this repository switching
dataflows changes **one constructor argument**; the per-dataflow code is
the generator's conditional branches, measured below.
"""

from repro.analysis import generator_loc_report
from repro.baselines import LOC_COMPARISON

from conftest import emit


def test_loc_table(benchmark):
    report = benchmark.pedantic(generator_loc_report, rounds=1, iterations=1)
    lines = [
        f"{'implementation':34} {'WS impl LOC':>12} {'WS->IS delta':>13}",
        f"{'SCALE-Sim (paper, Python)':34} "
        f"{LOC_COMPARISON['scalesim_ws_loc']:>12} "
        f"{LOC_COMPARISON['scalesim_ws_to_is_delta']:>13}",
        f"{'EQueue generator (paper, C++)':34} "
        f"{LOC_COMPARISON['equeue_paper_ws_loc']:>12} "
        f"{LOC_COMPARISON['equeue_paper_ws_to_is_delta']:>13}",
        f"{'This repo (Python, all dataflows)':34} "
        f"{report.total_loc:>12} {1:>13}",
        "",
        f"dataflow-conditional LOC in our generator: "
        f"{report.dataflow_conditional_loc} of {report.total_loc} "
        f"({report.dataflow_conditional_loc / report.total_loc:.0%}); "
        "the user-facing switch is one constructor argument.",
    ]
    emit("loc_table", lines)

    # The structural claim: switching dataflows touches a small fraction
    # of the code, unlike SCALE-Sim's 410/569 = 72%.
    ours = report.dataflow_conditional_loc / report.total_loc
    scalesim = (
        LOC_COMPARISON["scalesim_ws_to_is_delta"]
        / LOC_COMPARISON["scalesim_ws_loc"]
    )
    assert ours < scalesim / 2
