#!/usr/bin/env python
"""Record the performance benchmarks as machine-readable JSON snapshots.

Runs the ``bench_engine_speed`` workload (the §VI-C wall-clock
comparison), the sweep-throughput workload (the §VI-E whole-sweep
scalability story), and the service-throughput workload (``equeue-serve``
cold vs warm requests/s — see ``docs/serving.md``) directly — no pytest
involved — and writes ``BENCH_engine_speed.json``,
``BENCH_sweep_throughput.json``, and ``BENCH_service_throughput.json``
at the repository root so the performance trajectory is tracked across
PRs::

    PYTHONPATH=src python benchmarks/record_bench.py
    PYTHONPATH=src python benchmarks/record_bench.py --engine-only
    PYTHONPATH=src python benchmarks/record_bench.py --sweep-jobs 8

The engine snapshot records events/s for the plan-mode engine on both
scheduler backends (the tiered event wheel and the binary-heap
reference), the interpreted engine, the warm execution-mode ablation
(plan vs source codegen over a pre-warmed plan cache — the
compile-once/execute-many regime, recorded as ``codegen_speedup``),
and one oracle-checked events/s row per registered workload scenario
(``scenario_runs``, from :mod:`repro.scenarios` via
``bench_scenarios.py`` — each row in its own subprocess); the sweep
snapshot records
whole-sweep points/s for the serial reference loop versus the sharded
batch runner (``jobs=N`` with cross-simulation compile caching and
structural result reuse), after checking the two produce bit-identical
DSE points.

``--check-regression`` additionally diffs the fresh engine snapshot
against the committed one and exits non-zero on a >10% events/s drop,
so CI fails when a change slows the engine down.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine_speed.json"
SWEEP_OUTPUT = REPO_ROOT / "BENCH_sweep_throughput.json"
SERVICE_OUTPUT = REPO_ROOT / "BENCH_service_throughput.json"
SIZE = 16  # matches bench_engine_speed's default (non-FULL_SWEEP) workload
#: Enabled-telemetry cost ceiling: metrics-on warm wall clock may be at
#: most 2% above metrics-off (see docs/observability.md).
OBS_OVERHEAD_CEILING = 1.02


def _bench_program():
    """The engine-speed workload: program plus deterministic inputs."""
    from repro.dialects.linalg import ConvDims
    from repro.generators.systolic import (
        SystolicConfig,
        build_systolic_program,
    )

    rng = np.random.default_rng(7)
    dims = ConvDims(n=1, c=3, h=SIZE, w=SIZE, fh=2, fw=2)
    program = build_systolic_program(SystolicConfig("WS", 4, 4, dims))
    ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(np.int32)
    weights = rng.integers(
        -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
    ).astype(np.int32)
    return program, ifmap, weights


def _row(mode, scheduler, warm, result, wall_clock_s, compile_summary):
    """One engine-speed snapshot row from a timed simulation."""
    summary = result.summary
    if compile_summary is None:
        compile_summary = summary
    events = summary.scheduler_events
    return {
        "mode": mode,
        # Kept for readers of pre-ExecutionMode snapshots.
        "compile_plans": mode != "interpret",
        "scheduler": scheduler,
        "warm": warm,
        "cycles": result.cycles,
        "scheduler_events": events,
        "wall_clock_s": round(wall_clock_s, 6),
        "events_per_s": round(events / wall_clock_s) if wall_clock_s else 0,
        "microtask_events": summary.microtask_events,
        "wheel_events": summary.wheel_events,
        "heap_events": summary.heap_events,
        "launches_executed": summary.launches_executed,
        "plans_compiled": compile_summary.plans_compiled,
        "plan_cache_hits": summary.plan_cache_hits,
        "vector_loops": compile_summary.vector_loops,
        "vector_iterations": summary.vector_iterations,
        "blocks_codegenned": compile_summary.blocks_codegenned,
        "codegen_fallbacks": compile_summary.codegen_fallbacks,
    }


def run_workload(
    mode: str = "plan",
    scheduler: str = "wheel",
    warm: bool = False,
    repeats: int = 1,
) -> dict:
    """One engine-speed row.

    ``mode`` selects the execution path (interpret | plan | codegen).
    ``warm=True`` measures steady-state throughput: the plan cache is
    pre-warmed by a throwaway run, so the timed pass pays zero plan
    compilation or source codegen — the compile-once/execute-many regime
    every sweep and service workload runs in.  ``repeats`` times the
    measured pass that many times and keeps the fastest (noise floor).
    """
    from repro.sim import EngineOptions, PlanCache, simulate

    program, ifmap, weights = _bench_program()
    options = EngineOptions(mode=mode, scheduler=scheduler)
    plan_cache = None
    compile_summary = None
    if warm:
        plan_cache = PlanCache()
        warm_up = simulate(
            program.module,
            options,
            inputs=program.prepare_inputs(ifmap, weights),
            plan_cache=plan_cache,
        )
        # The timed pass compiles nothing (the cache is warm); the
        # warm-up pass's counters describe the artifacts it executes.
        compile_summary = warm_up.summary
    wall_clock_s = None
    for _ in range(max(1, repeats)):
        inputs = program.prepare_inputs(ifmap, weights)
        started = time.perf_counter()
        result = simulate(
            program.module, options, inputs=inputs, plan_cache=plan_cache
        )
        elapsed = time.perf_counter() - started
        if wall_clock_s is None or elapsed < wall_clock_s:
            wall_clock_s = elapsed
    return _row(mode, scheduler, warm, result, wall_clock_s, compile_summary)


def run_warm_ablation(repeats: int = 5) -> list:
    """Both warm execution-mode rows (plan and codegen) from one process.

    The ``codegen_speedup`` ratio gates CI, so its two sides must not be
    measured in separate subprocesses minutes apart: machine-load drift
    between the invocations shows up as a phantom ratio change.  Here
    each mode gets its own pre-warmed plan cache, then the timed passes
    are *interleaved* (plan, codegen, plan, codegen, ...) with best-of-N
    per mode, so a load spike degrades both sides symmetrically and the
    ratio stays machine-neutral.
    """
    from repro.sim import EngineOptions, PlanCache, simulate

    program, ifmap, weights = _bench_program()
    modes = ("plan", "codegen")
    options = {m: EngineOptions(mode=m) for m in modes}
    caches = {m: PlanCache() for m in modes}
    compile_summaries = {}
    for m in modes:
        warm_up = simulate(
            program.module,
            options[m],
            inputs=program.prepare_inputs(ifmap, weights),
            plan_cache=caches[m],
        )
        compile_summaries[m] = warm_up.summary
    best = {m: None for m in modes}
    results = {}
    for _ in range(max(1, repeats)):
        for m in modes:
            inputs = program.prepare_inputs(ifmap, weights)
            started = time.perf_counter()
            results[m] = simulate(
                program.module,
                options[m],
                inputs=inputs,
                plan_cache=caches[m],
            )
            elapsed = time.perf_counter() - started
            if best[m] is None or elapsed < best[m]:
                best[m] = elapsed
    return [
        _row(m, "wheel", True, results[m], best[m], compile_summaries[m])
        for m in modes
    ]


def run_obs_overhead(repeats: int = 150) -> dict:
    """The telemetry-cost row: warm plan-mode passes with the metrics
    registry enabled vs disabled, interleaved as ``repeats`` adjacent
    on/off pairs in one process; the recorded ``obs_overhead`` is the
    **median of the per-pair relative differences** (as a ratio).

    The ratio gates CI at 1.02 (enabled telemetry must cost <= 2%), so
    its measurement has to resolve well under 2% on a single-CPU runner
    whose wall clock drifts by more than that over seconds.  Three
    choices buy that resolution: the workload is a *short* (~tens of
    ms) run so the two sides of a pair sit close enough in time to
    share one drift regime (the difference cancels it); the pair order
    alternates so any residual within-pair ramp biases successive pairs
    in opposite directions; and the median over many pairs discards
    preemption spikes.  A best-of-N quotient of two long runs has none
    of these protections and swings by ±4% on identical code here —
    unusable for this gate.

    The engine records metrics once per *run* (never per event), so
    the enabled side pays a handful of counter increments; anything
    above the gate means a metric write crept into the event loop.
    The two sides must also stay bit-identical (cycles, event counts):
    telemetry observes the simulation, it never perturbs it.
    """
    import gc

    from repro.dialects.linalg import ConvDims
    from repro.generators.systolic import (
        SystolicConfig,
        build_systolic_program,
    )
    from repro.obs import metrics as obs_metrics
    from repro.sim import EngineOptions, PlanCache, simulate

    rng = np.random.default_rng(7)
    dims = ConvDims(n=1, c=3, h=6, w=6, fh=2, fw=2)
    program = build_systolic_program(SystolicConfig("WS", 4, 4, dims))
    ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(np.int32)
    weights = rng.integers(
        -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
    ).astype(np.int32)
    options = EngineOptions(mode="plan")
    cache = PlanCache()
    simulate(
        program.module,
        options,
        inputs=program.prepare_inputs(ifmap, weights),
        plan_cache=cache,
    )
    states = ("off", "on")
    best = {state: None for state in states}
    samples = {state: [] for state in states}
    results = {}
    diffs = []
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for iteration in range(max(1, repeats)):
            ordered = states if iteration % 2 == 0 else states[::-1]
            elapsed = {}
            prepared = {
                state: program.prepare_inputs(ifmap, weights)
                for state in ordered
            }
            for state in ordered:
                if state == "on":
                    obs_metrics.enable_metrics()
                else:
                    obs_metrics.disable_metrics()
                started = time.perf_counter()
                results[state] = simulate(
                    program.module,
                    options,
                    inputs=prepared[state],
                    plan_cache=cache,
                )
                elapsed[state] = time.perf_counter() - started
                samples[state].append(elapsed[state])
                if best[state] is None or elapsed[state] < best[state]:
                    best[state] = elapsed[state]
            diffs.append(
                (elapsed["on"] - elapsed["off"]) / max(elapsed["off"], 1e-9)
            )
            if iteration % 25 == 24:
                # Periodic collection between pairs (never inside one)
                # keeps heap growth from turning into allocator drift.
                gc.collect()
    finally:
        obs_metrics.disable_metrics()
        if gc_was_enabled:
            gc.enable()
    overhead = 1.0 + sorted(diffs)[len(diffs) // 2]
    on, off = results["on"], results["off"]
    if on.cycles != off.cycles or (
        on.summary.scheduler_events != off.summary.scheduler_events
    ):
        raise SystemExit(
            "telemetry perturbed the simulation: metrics-on "
            f"{on.cycles}cy/{on.summary.scheduler_events}ev != metrics-off "
            f"{off.cycles}cy/{off.summary.scheduler_events}ev"
        )
    registry = obs_metrics.get_registry().snapshot()
    return {
        "repeats": repeats,
        "wall_clock_off_s": round(best["off"], 6),
        "wall_clock_on_s": round(best["on"], 6),
        "obs_overhead": round(overhead, 4),
        "cycles": on.cycles,
        "scheduler_events": on.summary.scheduler_events,
        "identical_results": True,
        "metrics_recorded": sum(
            1 for v in registry.values() if isinstance(v, (int, float)) and v
        ),
    }


def throughput_sweep_spec():
    """The sweep-throughput workload: a natural DSE slice of the §VI-E
    space (all three dataflows over two array shapes and a block of conv
    shapes) in the many-small-points regime Fig. 12 targets.  288 DES
    points over 62 distinct structural signatures (~4.6 points per
    structure), so it exercises both sharding and the cross-simulation
    caches."""
    from repro.analysis import SweepSpec

    return SweepSpec(
        array_heights=(4, 8),
        total_pes=64,
        image_sizes=(2, 4),
        filter_sizes=(1, 2),
        channels=(1, 2, 4),
        filter_counts=(1, 2, 4, 8),
        dataflows=("WS", "IS", "OS"),
    )


def _sweep_fingerprint(points) -> list:
    """The observable (timing-semantic) content of a sweep result, as
    JSON-comparable rows (scenarios run in separate processes)."""
    return [
        [
            point.dataflow,
            point.config.array_height,
            point.config.array_width,
            list(vars(point.config.dims).values()),
            point.cycles,
            point.loop_iterations,
            repr(point.peak_write_bw_x_portion),
            point.simulated,
        ]
        for point in points
    ]


def run_sweep_scenario(jobs, compile_cache, reuse_results) -> dict:
    """Run one sweep-throughput scenario in *this* process.

    Flags are explicit (never ``None``) so the recorded metadata states
    exactly which caches were active, independent of ``run_sweep``'s
    defaulting policy.
    """
    from repro.analysis import run_sweep

    spec = throughput_sweep_spec()
    started = time.perf_counter()
    points = run_sweep(
        spec,
        use_des=True,
        jobs=jobs,
        compile_cache=compile_cache,
        reuse_results=reuse_results,
    )
    wall_clock_s = time.perf_counter() - started
    return {
        "jobs": jobs,
        "compile_cache": compile_cache,
        "reuse_results": reuse_results,
        "points": len(points),
        "wall_clock_s": round(wall_clock_s, 6),
        "points_per_s": round(len(points) / wall_clock_s, 3)
        if wall_clock_s
        else 0.0,
        "fingerprint": _sweep_fingerprint(points),
    }


def _scenario_subprocess(flag: str, **kwargs) -> dict:
    """Run one scenario in a fresh interpreter, so scenarios cannot
    contaminate each other (warm caches, heap growth, inherited state)."""
    import subprocess
    import sys

    from repro.sim.batch import _export_import_path

    _export_import_path()  # children must find repro via PYTHONPATH
    command = [
        sys.executable,
        str(Path(__file__).resolve()),
        flag,
        json.dumps(kwargs),
    ]
    proc = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"scenario {flag} {kwargs} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def _sweep_scenario_subprocess(**kwargs) -> dict:
    return _scenario_subprocess("--sweep-scenario", **kwargs)


def _engine_scenario_subprocess(**kwargs) -> dict:
    """One engine-speed workload in its own interpreter: the wheel, heap,
    and interpreted rows must not share a process, or the later rows run
    against a warmer, more fragmented heap than the first (the same
    isolation rule the sweep scenarios follow)."""
    return _scenario_subprocess("--engine-scenario", **kwargs)


def _engine_ablation_subprocess(**kwargs) -> list:
    """Both warm execution-mode rows from ONE fresh interpreter: the
    codegen/plan ratio gates CI, so its two sides must share a process
    (and interleave their timed passes) to stay machine-neutral."""
    return _scenario_subprocess("--ablation-scenario", **kwargs)


def _obs_overhead_subprocess(**kwargs) -> dict:
    """The telemetry-cost row from ONE fresh interpreter: the gated
    obs_overhead ratio, like the codegen ratio, must measure both sides
    in one process with interleaved passes."""
    return _scenario_subprocess("--obs-scenario", **kwargs)


def _workload_row_subprocess(**kwargs) -> dict:
    """One registry-scenario row in its own interpreter (same isolation
    rule: rows must not inherit each other's warm caches and heaps)."""
    return _scenario_subprocess("--scenario-row", **kwargs)


def run_scenario_row(name: str) -> dict:
    """One per-workload events/s row (shared with bench_scenarios.py)."""
    from bench_scenarios import run_scenario_workload

    return run_scenario_workload(name)


def run_service_scenario() -> dict:
    """The cold/warm/restart service passes (shared with
    bench_service.py; run via subprocess isolation like every scenario)."""
    from bench_service import run_service_throughput

    return run_service_throughput()


def record_service_throughput(output: Path) -> dict:
    """Snapshot ``equeue-serve`` cold-vs-warm requests/s.

    The warm/cold ratio is the serving subsystem's acceptance headline
    (warm responses must not pay simulation cost), so a recorded ratio
    below 10x fails the run — unlike raw events/s it is measured within
    one process on one machine, with the same clock applied to both
    passes, so it is stable enough to gate.
    """
    snapshot = _scenario_subprocess("--service-scenario")
    output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    runs = {run["pass"]: run for run in snapshot["runs"]}
    print(
        f"{output}: cold {runs['cold']['requests_per_s']} req/s -> warm "
        f"{runs['warm']['requests_per_s']} req/s "
        f"({snapshot['warm_speedup']}x, hit rate "
        f"{snapshot['warm_hit_rate']:.0%}, restart "
        f"{snapshot['restart_speedup']}x)"
    )
    if snapshot["warm_speedup"] < 10.0:
        raise SystemExit(
            "service warm/cold requests/s ratio "
            f"{snapshot['warm_speedup']}x fell below the 10x acceptance "
            "floor (warm-path latency is no longer decoupled from "
            "simulation cost)"
        )
    return snapshot


def record_scenario_rows() -> list:
    from repro.scenarios import scenario_names

    rows = [
        _workload_row_subprocess(name=name) for name in scenario_names()
    ]
    for row in rows:
        print(
            f"  scenario {row['scenario']:>10}: {row['events_per_s']:,} "
            f"events/s ({row['cycles']} cycles, "
            f"{row['scheduler_events']} events, oracle-checked)"
        )
    return rows


def record_sweep_throughput(output: Path, jobs: int) -> dict:
    # The reference scenario is run_sweep's jobs=1 default: the cold
    # serial loop.  The parallel scenario matches run_sweep's defaults
    # for jobs != 1 (both caches on), stated explicitly for the record.
    reference = _sweep_scenario_subprocess(
        jobs=1, compile_cache=False, reuse_results=False
    )
    serial_cached = _sweep_scenario_subprocess(
        jobs=1, compile_cache=True, reuse_results=True
    )
    parallel = _sweep_scenario_subprocess(
        jobs=jobs, compile_cache=True, reuse_results=True
    )
    runs = [
        {"mode": "serial-reference", **reference},
        {"mode": "serial-cached", **serial_cached},
        {"mode": f"parallel-jobs{jobs}", **parallel},
    ]
    fingerprints = [run.pop("fingerprint") for run in runs]
    if not all(fp == fingerprints[0] for fp in fingerprints[1:]):
        raise SystemExit(
            "sweep results differ between serial and parallel runs"
        )
    from repro.sim.batch import default_jobs

    snapshot = {
        "benchmark": "bench_sweep_throughput",
        "workload": (
            "DES sweep: 3 dataflows x {4,8}-high 64-PE arrays x "
            "{2,4}-image x {1,2} filter x {1,2,4} channels x "
            "{1,2,4,8} counts"
        ),
        "points": runs[0]["points"],
        "usable_cpus": default_jobs(),
        "runs": runs,
        "identical_results": True,
        "speedup": round(
            reference["wall_clock_s"]
            / max(parallel["wall_clock_s"], 1e-9),
            3,
        ),
        "speedup_serial_cached": round(
            reference["wall_clock_s"]
            / max(serial_cached["wall_clock_s"], 1e-9),
            3,
        ),
    }
    output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    print(
        f"{output}: {runs[-1]['points_per_s']} points/s at jobs={jobs} "
        f"({snapshot['speedup']}x over the serial reference loop, "
        f"{runs[0]['points']} points, identical results)"
    )
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record benchmark snapshots at the repo root."
    )
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT),
        help="output JSON path (default: repo-root BENCH_engine_speed.json)",
    )
    parser.add_argument(
        "--interpret-only", action="store_true",
        help="record only the interpreted engine (skip the compiled run)",
    )
    parser.add_argument(
        "--engine-only", action="store_true",
        help="skip the sweep-throughput snapshot",
    )
    parser.add_argument(
        "--sweep-only", action="store_true",
        help="record only the sweep-throughput snapshot",
    )
    parser.add_argument(
        "--service-only", action="store_true",
        help="record only the service-throughput snapshot",
    )
    parser.add_argument(
        "--skip-service", action="store_true",
        help="skip the service-throughput snapshot",
    )
    parser.add_argument(
        "--service-output", default=str(SERVICE_OUTPUT),
        help="service snapshot path (default: repo-root "
        "BENCH_service_throughput.json)",
    )
    parser.add_argument(
        "--sweep-output", default=str(SWEEP_OUTPUT),
        help="sweep snapshot path (default: repo-root "
        "BENCH_sweep_throughput.json)",
    )
    parser.add_argument(
        "--sweep-jobs", type=int, default=4,
        help="worker processes for the parallel sweep run (default 4)",
    )
    parser.add_argument(
        "--check-regression", action="store_true",
        help="compare the fresh engine snapshot against the committed one "
        "at the output path and fail on a >10%% drop of the "
        "machine-neutral compiled/interpreted events/s ratio; raw "
        "events/s diffs are printed informationally (CI guard; the "
        "fresh snapshot is still written)",
    )
    parser.add_argument(
        "--regression-threshold", type=float, default=0.10,
        help="fractional events/s drop tolerated by --check-regression "
        "(default 0.10)",
    )
    parser.add_argument(
        "--skip-scenarios", action="store_true",
        help="skip the per-workload scenario rows in the engine snapshot",
    )
    parser.add_argument(
        "--sweep-scenario", default="", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--engine-scenario", default="", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--ablation-scenario", default="", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--obs-scenario", default="", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--scenario-row", default="", help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--service-scenario", default="", help=argparse.SUPPRESS,
    )
    args = parser.parse_args(argv)

    if args.sweep_scenario:
        print(json.dumps(run_sweep_scenario(**json.loads(args.sweep_scenario))))
        return 0
    if args.engine_scenario:
        print(json.dumps(run_workload(**json.loads(args.engine_scenario))))
        return 0
    if args.ablation_scenario:
        print(json.dumps(
            run_warm_ablation(**json.loads(args.ablation_scenario))
        ))
        return 0
    if args.obs_scenario:
        print(json.dumps(run_obs_overhead(**json.loads(args.obs_scenario))))
        return 0
    if args.scenario_row:
        print(json.dumps(run_scenario_row(**json.loads(args.scenario_row))))
        return 0
    if args.service_scenario:
        print(json.dumps(run_service_scenario(
            **json.loads(args.service_scenario)
        )))
        return 0

    if args.sweep_only:
        record_sweep_throughput(Path(args.sweep_output), args.sweep_jobs)
        return 0
    if args.service_only:
        record_service_throughput(Path(args.service_output))
        return 0

    output = Path(args.output)
    committed = None
    if args.check_regression and output.exists():
        committed = json.loads(output.read_text(encoding="utf-8"))

    runs = []
    if not args.interpret_only:
        runs.append(
            _engine_scenario_subprocess(mode="plan", scheduler="wheel")
        )
        # The scheduler-backend ablation row: same compiled engine on the
        # reference binary-heap scheduler.
        runs.append(
            _engine_scenario_subprocess(mode="plan", scheduler="heap")
        )
        # The execution-mode ablation rows, measured warm (pre-warmed
        # plan cache, interleaved best-of-5): the compile-once/
        # execute-many regime where source codegen earns its keep.  Both
        # rows come from one subprocess so the gated ratio cannot be
        # skewed by machine drift between separate invocations.
        runs.extend(_engine_ablation_subprocess(repeats=5))
    runs.append(_engine_scenario_subprocess(mode="interpret"))
    obs_row = None
    if not args.interpret_only:
        # The telemetry-cost row: enabled-metrics warm passes vs
        # disabled, interleaved in one subprocess; the ratio gates below.
        obs_row = _obs_overhead_subprocess(repeats=150)
    compiled = next(
        (r for r in runs if r["mode"] == "plan" and not r["warm"]), None
    )
    heap_run = next(
        (
            r
            for r in runs
            if r["mode"] == "plan" and r["scheduler"] == "heap"
        ),
        None,
    )
    warm_plan = next(
        (r for r in runs if r["mode"] == "plan" and r["warm"]), None
    )
    warm_codegen = next(
        (r for r in runs if r["mode"] == "codegen" and r["warm"]), None
    )
    interpreted = next(r for r in runs if r["mode"] == "interpret")
    snapshot = {
        "benchmark": "bench_engine_speed",
        "workload": f"{SIZE}x{SIZE} ifmap, 2x2x3 weights, 4x4 WS array",
        "runs": runs,
    }
    if compiled is not None:
        snapshot["speedup"] = round(
            interpreted["wall_clock_s"]
            / max(compiled["wall_clock_s"], 1e-9),
            3,
        )
        if compiled["cycles"] != interpreted["cycles"]:
            raise SystemExit(
                "compiled/interpreted cycle mismatch: "
                f"{compiled['cycles']} != {interpreted['cycles']}"
            )
    if compiled is not None and heap_run is not None:
        snapshot["scheduler_speedup"] = round(
            heap_run["wall_clock_s"]
            / max(compiled["wall_clock_s"], 1e-9),
            3,
        )
        if heap_run["cycles"] != compiled["cycles"] or (
            heap_run["scheduler_events"] != compiled["scheduler_events"]
        ):
            raise SystemExit(
                "wheel/heap scheduler mismatch: "
                f"{compiled['cycles']}cy/{compiled['scheduler_events']}ev "
                f"!= {heap_run['cycles']}cy/{heap_run['scheduler_events']}ev"
            )
    if warm_plan is not None and warm_codegen is not None:
        # Codegen is an execution path, not a model change: cycles and
        # event counts must be bit-identical before the ratio means
        # anything.
        for row in (warm_plan, warm_codegen):
            if row["cycles"] != interpreted["cycles"] or (
                row["scheduler_events"] != interpreted["scheduler_events"]
            ):
                raise SystemExit(
                    f"mode={row['mode']} warm row diverged: "
                    f"{row['cycles']}cy/{row['scheduler_events']}ev != "
                    f"{interpreted['cycles']}cy/"
                    f"{interpreted['scheduler_events']}ev"
                )
        snapshot["codegen_speedup"] = round(
            warm_codegen["events_per_s"]
            / max(warm_plan["events_per_s"], 1),
            3,
        )
        print(
            f"  codegen ablation (warm): plan "
            f"{warm_plan['events_per_s']:,} -> codegen "
            f"{warm_codegen['events_per_s']:,} events/s "
            f"({snapshot['codegen_speedup']}x, "
            f"{warm_codegen['blocks_codegenned']} blocks generated, "
            f"{warm_codegen['codegen_fallbacks']} fallbacks)"
        )
    if obs_row is not None:
        snapshot["obs_overhead"] = obs_row["obs_overhead"]
        snapshot["obs_overhead_run"] = obs_row
        print(
            f"  obs overhead (warm): metrics off "
            f"{obs_row['wall_clock_off_s']:.4f}s -> on "
            f"{obs_row['wall_clock_on_s']:.4f}s "
            f"({obs_row['obs_overhead']}x, "
            f"{obs_row['metrics_recorded']} metrics recorded, "
            "identical results)"
        )
        if obs_row["obs_overhead"] > OBS_OVERHEAD_CEILING:
            raise SystemExit(
                f"enabled-telemetry overhead {obs_row['obs_overhead']}x "
                f"exceeds the {OBS_OVERHEAD_CEILING}x acceptance ceiling "
                "(a metric write crept into the simulation hot path; "
                "see docs/observability.md)"
            )
    headline = compiled or interpreted
    print(
        f"{output}: {headline['events_per_s']:,} events/s "
        f"({headline['wall_clock_s']:.3f} s, {headline['cycles']} cycles"
        + (
            f", {snapshot['speedup']}x over interpreted)"
            if compiled is not None
            else ")"
        )
    )
    if not args.skip_scenarios:
        snapshot["scenario_runs"] = record_scenario_rows()
    output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    if committed is not None:
        check_engine_regression(
            committed, snapshot, args.regression_threshold
        )
    if not args.engine_only:
        record_sweep_throughput(Path(args.sweep_output), args.sweep_jobs)
        if not args.skip_service:
            record_service_throughput(Path(args.service_output))
    return 0


def _run_mode(run: dict) -> str:
    """A run's execution mode; pre-ExecutionMode snapshots only carry
    the ``compile_plans`` boolean, which maps onto plan/interpret."""
    mode = run.get("mode")
    if mode is not None:
        return mode
    return "plan" if run.get("compile_plans") else "interpret"


def _events_per_s(snapshot: dict, compile_plans: bool) -> int:
    """The snapshot's first cold run with the given engine strategy (any
    scheduler — pre-wheel snapshots lack the field), or 0."""
    for run in snapshot.get("runs", []):
        if run.get("warm"):
            continue
        if (_run_mode(run) != "interpret") == compile_plans:
            return run.get("events_per_s", 0)
    return 0


def _mode_events_per_s(snapshot: dict, mode: str, warm: bool) -> int:
    """The snapshot's first run with the given mode/warmth, or 0 (older
    committed snapshots have no warm ablation rows)."""
    for run in snapshot.get("runs", []):
        if _run_mode(run) == mode and bool(run.get("warm")) == warm:
            return run.get("events_per_s", 0)
    return 0


def check_engine_regression(
    committed: dict, fresh: dict, threshold: float
) -> None:
    """Fail (exit non-zero) when events/s regressed beyond tolerance.

    The gate is the **compiled/interpreted events/s ratio**, measured
    within each snapshot, at ``threshold`` (default 10%): it is
    machine-neutral, so a committed baseline recorded on different
    hardware cannot trip it, and it catches regressions of the compiled
    fast path.  The raw events/s diff is printed *informationally only*:
    this class of single-CPU environment swings raw throughput by well
    over 30% on identical code (clock throttling, runner-class
    variance), so any raw cross-machine tolerance either flakes or is
    too loose to mean anything — a slowdown hitting both engine
    strategies proportionally must be judged from the printed numbers
    (or a local A/B), not gated in CI.

    Runs are compared like-for-like (compiled vs compiled, falling back
    to interpreted vs interpreted for ``--interpret-only`` snapshots);
    an exceeded tolerance aborts so CI fails on the regression.
    """
    checks = []  # (metric, before, after, tolerance or None=informational)
    before = _events_per_s(committed, True)
    after = _events_per_s(fresh, True)
    if before and after:
        checks.append(("events/s (compiled)", before, after, None))
        base_before = _events_per_s(committed, False)
        base_after = _events_per_s(fresh, False)
        if base_before and base_after:
            checks.append(
                (
                    "compiled/interpreted events/s ratio",
                    round(before / base_before, 4),
                    round(after / base_after, 4),
                    threshold,
                )
            )
        # The codegen ablation gate: the warm codegen/plan events/s
        # ratio is machine-neutral the same way (both sides measured in
        # one run on one machine), so a codegen-path regression fails CI
        # even when raw throughput swings.
        cg_before = _mode_events_per_s(committed, "codegen", warm=True)
        cg_after = _mode_events_per_s(fresh, "codegen", warm=True)
        warm_before = _mode_events_per_s(committed, "plan", warm=True)
        warm_after = _mode_events_per_s(fresh, "plan", warm=True)
        if cg_before and cg_after and warm_before and warm_after:
            checks.append(
                (
                    "codegen/plan warm events/s ratio",
                    round(cg_before / warm_before, 4),
                    round(cg_after / warm_after, 4),
                    threshold,
                )
            )
    else:
        before = _events_per_s(committed, False)
        after = _events_per_s(fresh, False)
        if before and after:
            checks.append(("events/s (interpreted)", before, after, None))
    if not checks:
        print(
            "regression check: no comparable runs between committed and "
            "fresh snapshots; skipped"
        )
        return
    failures = []
    # The telemetry gate is absolute, not relative to the committed
    # snapshot: enabled metrics must cost <= 2% regardless of history.
    obs_overhead = fresh.get("obs_overhead")
    if obs_overhead is not None:
        verdict = "OK" if obs_overhead <= OBS_OVERHEAD_CEILING else (
            "REGRESSION"
        )
        print(
            f"regression check [obs_overhead]: fresh {obs_overhead}x "
            f"(absolute ceiling {OBS_OVERHEAD_CEILING}x): {verdict}"
        )
        if obs_overhead > OBS_OVERHEAD_CEILING:
            failures.append(
                f"obs_overhead {obs_overhead}x exceeds the "
                f"{OBS_OVERHEAD_CEILING}x ceiling"
            )
    for metric, before, after, tolerance in checks:
        change = (after - before) / before
        if tolerance is None:
            print(
                f"regression check [{metric}]: committed {before:,} -> "
                f"fresh {after:,} ({change:+.1%}, informational)"
            )
            continue
        verdict = "OK" if change >= -tolerance else "REGRESSION"
        print(
            f"regression check [{metric}]: committed {before:,} -> fresh "
            f"{after:,} ({change:+.1%}, tolerance -{tolerance:.0%}): "
            f"{verdict}"
        )
        if change < -tolerance:
            failures.append(f"{metric} fell {-change:.1%} (> {tolerance:.0%})")
    if failures:
        raise SystemExit(
            "engine-speed regression vs the committed "
            "BENCH_engine_speed.json: " + "; ".join(failures)
        )


if __name__ == "__main__":
    raise SystemExit(main())
