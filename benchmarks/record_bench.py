#!/usr/bin/env python
"""Record the engine-speed benchmark as a machine-readable JSON snapshot.

Runs the ``bench_engine_speed`` workload (the §VI-C wall-clock comparison)
directly — no pytest involved — and writes ``BENCH_engine_speed.json`` at
the repository root so the performance trajectory is tracked across PRs::

    PYTHONPATH=src python benchmarks/record_bench.py
    PYTHONPATH=src python benchmarks/record_bench.py --interpret -o other.json

The snapshot records events/s (the headline engine-throughput metric),
wall-clock, simulated cycles, and the plan-compilation statistics, for
both the compiled and interpreted engines.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_engine_speed.json"
SIZE = 16  # matches bench_engine_speed's default (non-FULL_SWEEP) workload


def run_workload(compile_plans: bool) -> dict:
    from repro.dialects.linalg import ConvDims
    from repro.generators.systolic import (
        SystolicConfig,
        build_systolic_program,
    )
    from repro.sim import EngineOptions, simulate

    rng = np.random.default_rng(7)
    dims = ConvDims(n=1, c=3, h=SIZE, w=SIZE, fh=2, fw=2)
    program = build_systolic_program(SystolicConfig("WS", 4, 4, dims))
    ifmap = rng.integers(-3, 4, (dims.c, dims.h, dims.w)).astype(np.int32)
    weights = rng.integers(
        -3, 4, (dims.n, dims.c, dims.fh, dims.fw)
    ).astype(np.int32)
    inputs = program.prepare_inputs(ifmap, weights)
    started = time.perf_counter()
    result = simulate(
        program.module,
        EngineOptions(compile_plans=compile_plans),
        inputs=inputs,
    )
    wall_clock_s = time.perf_counter() - started
    summary = result.summary
    events = summary.scheduler_events
    return {
        "compile_plans": compile_plans,
        "cycles": result.cycles,
        "scheduler_events": events,
        "wall_clock_s": round(wall_clock_s, 6),
        "events_per_s": round(events / wall_clock_s) if wall_clock_s else 0,
        "launches_executed": summary.launches_executed,
        "plans_compiled": summary.plans_compiled,
        "plan_cache_hits": summary.plan_cache_hits,
        "vector_loops": summary.vector_loops,
        "vector_iterations": summary.vector_iterations,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Record BENCH_engine_speed.json at the repo root."
    )
    parser.add_argument(
        "-o", "--output", default=str(DEFAULT_OUTPUT),
        help="output JSON path (default: repo-root BENCH_engine_speed.json)",
    )
    parser.add_argument(
        "--interpret-only", action="store_true",
        help="record only the interpreted engine (skip the compiled run)",
    )
    args = parser.parse_args(argv)

    runs = []
    if not args.interpret_only:
        runs.append(run_workload(compile_plans=True))
    runs.append(run_workload(compile_plans=False))
    compiled = next((r for r in runs if r["compile_plans"]), None)
    interpreted = next(r for r in runs if not r["compile_plans"])
    snapshot = {
        "benchmark": "bench_engine_speed",
        "workload": f"{SIZE}x{SIZE} ifmap, 2x2x3 weights, 4x4 WS array",
        "runs": runs,
    }
    if compiled is not None:
        snapshot["speedup"] = round(
            interpreted["wall_clock_s"]
            / max(compiled["wall_clock_s"], 1e-9),
            3,
        )
        if compiled["cycles"] != interpreted["cycles"]:
            raise SystemExit(
                "compiled/interpreted cycle mismatch: "
                f"{compiled['cycles']} != {interpreted['cycles']}"
            )
    output = Path(args.output)
    output.write_text(json.dumps(snapshot, indent=2) + "\n", encoding="utf-8")
    headline = compiled or interpreted
    print(
        f"{output}: {headline['events_per_s']:,} events/s "
        f"({headline['wall_clock_s']:.3f} s, {headline['cycles']} cycles"
        + (
            f", {snapshot['speedup']}x over interpreted)"
            if compiled is not None
            else ")"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
