"""Per-scenario engine throughput: events/s across the whole registry.

The registry makes throughput a *breadth* measurement: one row per
registered workload (default config, compiled engine, event-wheel
scheduler), each oracle-checked, so the bench doubles as an end-to-end
correctness sweep.  ``record_bench.py`` snapshots the same rows —
measured in isolated subprocesses — into ``BENCH_engine_speed.json``
under ``scenario_runs`` so the per-workload trajectory is tracked
across PRs.
"""

import time

from repro.scenarios import get_scenario, scenario_names

from conftest import emit


def run_scenario_workload(name: str, seed: int = 0) -> dict:
    """Build + simulate one scenario's default config; oracle-checked.

    A cold build each call (no process caches) so rows are comparable
    across scenarios and across runs.
    """
    scenario = get_scenario(name)
    cfg = scenario.configure()
    module = scenario.build(cfg)
    inputs = scenario.make_inputs(cfg, seed)
    from repro.sim import EngineOptions, simulate

    started = time.perf_counter()
    result = simulate(module, EngineOptions(verify_module=False), inputs)
    wall_clock_s = time.perf_counter() - started
    scenario.check(cfg, result, seed)
    events = result.summary.scheduler_events
    return {
        "scenario": name,
        "cycles": result.cycles,
        "scheduler_events": events,
        "launches_executed": result.summary.launches_executed,
        "wall_clock_s": round(wall_clock_s, 6),
        "events_per_s": round(events / wall_clock_s) if wall_clock_s else 0,
        "checked": True,
    }


def test_scenario_throughput_rows(benchmark):
    """One events/s row per registered scenario, every oracle passing."""

    def sweep():
        return [run_scenario_workload(name) for name in scenario_names()]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        f"{'scenario':>10} {'cycles':>8} {'events':>8} {'launches':>9} "
        f"{'wall-clock':>11} {'events/s':>12}"
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:>10} {row['cycles']:>8} "
            f"{row['scheduler_events']:>8} {row['launches_executed']:>9} "
            f"{row['wall_clock_s']:>10.3f}s {row['events_per_s']:>12,}"
        )
    lines.append(
        "(every row oracle-checked: functional output, closed-form "
        "cycles/traffic)"
    )
    emit("scenario_throughput", lines)
    assert len(rows) >= 5
    assert all(row["checked"] for row in rows)
    assert all(row["cycles"] > 0 for row in rows)
