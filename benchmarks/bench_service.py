"""Service throughput: cold vs warm requests/s through ``equeue-serve``.

The serving subsystem's whole claim is that **warm-path latency is
decoupled from simulation cost**: once a request's record is in the
content-addressed store, answering it again costs an HTTP round trip
plus a blob read — no build, no verify, no DES.  This bench measures
that decoupling end to end through the real HTTP API:

* **cold** — a set of distinct scenario requests against an empty
  store; every one simulates.
* **warm** — the identical requests against the same live server;
  every one must be a store hit.
* **restart** — a *new* server instance over the same store directory
  (a redeploy); still all store hits, proving persistence.

``record_bench.py`` snapshots the same passes — in an isolated
subprocess — into ``BENCH_service_throughput.json`` with the warm/cold
requests-per-second ratio, tracked across PRs.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.service.client import ServiceClient
from repro.service.server import make_server

from conftest import emit

#: Distinct requests spanning the registry: every scenario family, a mix
#: of default and overridden configs, so the cold pass pays a realistic
#: spread of build+simulate costs.
REQUESTS = [
    ("gemm", {"m": 8, "k": 64, "n": 8, "tile_k": 8}),
    ("gemm", {"m": 4, "k": 128, "n": 4, "tile_k": 8}),
    ("mesh", {"rows": 4, "cols": 4, "rounds": 8}),
    ("mesh", {"rows": 5, "cols": 5, "rounds": 4}),
    ("fir", {"taps": 64, "samples": 128}),
    ("fir", {"taps": 32, "samples": 256}),
    ("systolic", {"h": 8, "w": 8}),
    ("pipeline", {}),
]


class _LiveServer:
    """A served scheduler on an ephemeral port (context manager)."""

    def __init__(self, store_path: str):
        self.server = make_server(
            host="127.0.0.1", port=0, store_path=store_path
        )
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )

    def __enter__(self) -> ServiceClient:
        self.server.scheduler.start()
        self.thread.start()
        host, port = self.server.server_address[:2]
        return ServiceClient(f"http://{host}:{port}", timeout=120.0)

    def __exit__(self, *exc_info):
        self.server.shutdown()
        self.server.scheduler.stop()
        self.server.server_close()
        self.thread.join(timeout=30)


def _timed_pass(client: ServiceClient, expect_source: str) -> dict:
    started = time.perf_counter()
    sources = []
    cycles = []
    for name, config in REQUESTS:
        job = client.run(name, config=config or None, wait=300.0)
        sources.append(job["source"])
        cycles.append(job["record"]["cycles"])
    wall_clock_s = time.perf_counter() - started
    if any(source != expect_source for source in sources):
        raise AssertionError(
            f"expected every request to be {expect_source!r}, got {sources}"
        )
    return {
        "requests": len(REQUESTS),
        "wall_clock_s": round(wall_clock_s, 6),
        "requests_per_s": round(len(REQUESTS) / wall_clock_s, 3),
        "cycles": cycles,
    }


def run_service_throughput(store_root: str = "") -> dict:
    """The three passes over one store; returns the snapshot dict."""
    with tempfile.TemporaryDirectory(prefix="equeue-bench-") as tmp:
        store_path = store_root or str(Path(tmp) / "store")
        with _LiveServer(store_path) as client:
            cold = _timed_pass(client, "simulated")
            before_warm = client.stats()
            warm = _timed_pass(client, "store")
            stats = client.stats()
        with _LiveServer(store_path) as client:
            restart = _timed_pass(client, "store")
    runs = [
        {"pass": "cold", **cold},
        {"pass": "warm", **warm},
        {"pass": "warm-restart", **restart},
    ]
    # The decoupling headline: warm requests/s over cold requests/s.
    speedup = round(warm["requests_per_s"] / cold["requests_per_s"], 2)
    # The *warm pass's* hit rate (deltas across it, not the server
    # lifetime blend — the cold pass's misses are by design): 1.0 means
    # every repeat request was answered from the store.
    warm_hits = stats["store"]["hits"] - before_warm["store"]["hits"]
    warm_misses = stats["store"]["misses"] - before_warm["store"]["misses"]
    hit_rate = round(warm_hits / max(1, warm_hits + warm_misses), 4)
    return {
        "benchmark": "bench_service_throughput",
        "workload": f"{len(REQUESTS)} distinct scenario requests over HTTP "
        "(gemm/mesh/fir/systolic/pipeline)",
        "runs": runs,
        "warm_speedup": speedup,
        "restart_speedup": round(
            restart["requests_per_s"] / cold["requests_per_s"], 2
        ),
        "warm_hit_rate": hit_rate,
        "simulated_jobs": stats["simulated"],
        "identical_records": True,  # enforced per request by the oracle
    }


def test_service_cold_vs_warm(benchmark):
    """Warm requests must be store hits and decisively faster than cold
    (the end-to-end form of the never-simulate-twice invariant)."""
    snapshot = benchmark.pedantic(
        run_service_throughput, rounds=1, iterations=1
    )
    runs = {run["pass"]: run for run in snapshot["runs"]}
    lines = [
        f"{'pass':>14} {'requests':>9} {'wall-clock':>11} {'req/s':>9}"
    ]
    for name in ("cold", "warm", "warm-restart"):
        run = runs[name]
        lines.append(
            f"{name:>14} {run['requests']:>9} "
            f"{run['wall_clock_s']:>10.3f}s {run['requests_per_s']:>9}"
        )
    lines.append(
        f"warm speedup {snapshot['warm_speedup']}x, hit rate "
        f"{snapshot['warm_hit_rate']:.0%}, "
        f"{snapshot['simulated_jobs']} simulations for "
        f"{2 * len(REQUESTS)} live-server requests"
    )
    emit("service_throughput", lines)
    assert runs["warm"]["cycles"] == runs["cold"]["cycles"]
    assert runs["warm-restart"]["cycles"] == runs["cold"]["cycles"]
    assert snapshot["simulated_jobs"] == len(REQUESTS)
    # CI boxes are noisy; the >=10x headline is asserted where it is
    # recorded (record_bench.py), a plain >1x sanity bound here.
    assert snapshot["warm_speedup"] > 1.0
